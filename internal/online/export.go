package online

import (
	"fmt"
	"sort"

	"repro/internal/replication"
)

// DemandEntry is one (server, object) demand cell on the wire.
type DemandEntry struct {
	Server int   `json:"server"`
	Object int32 `json:"object"`
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
}

// StateSnapshot is the wire form of a controller's mutable state: everything
// a fresh controller needs to continue from the same workload, minus the cost
// oracle (shared by configuration, not shipped). The cluster coordinator
// ships masked snapshots to shard daemons on every (re-)assignment; demand is
// sorted by (server, object) so the encoding is deterministic.
type StateSnapshot struct {
	Capacity []int64       `json:"capacity"`
	Active   []bool        `json:"active"`
	Sizes    []int64       `json:"sizes"`
	Primary  []int32       `json:"primary"`
	Retired  []bool        `json:"retired"`
	Demand   []DemandEntry `json:"demand"`
}

// Validate checks the snapshot's internal consistency.
func (s *StateSnapshot) Validate() error {
	m, n := len(s.Capacity), len(s.Sizes)
	if m < 1 {
		return fmt.Errorf("online: state snapshot has no servers")
	}
	if len(s.Active) != m {
		return fmt.Errorf("online: state snapshot active has %d entries, want %d", len(s.Active), m)
	}
	if len(s.Primary) != n || len(s.Retired) != n {
		return fmt.Errorf("online: state snapshot primary/retired have %d/%d entries, want %d",
			len(s.Primary), len(s.Retired), n)
	}
	for i, c := range s.Capacity {
		if c < 0 {
			return fmt.Errorf("online: state snapshot capacity[%d] = %d is negative", i, c)
		}
	}
	for k, p := range s.Primary {
		if p < 0 || int(p) >= m {
			return fmt.Errorf("online: state snapshot primary[%d] = %d outside [0,%d)", k, p, m)
		}
	}
	for i, d := range s.Demand {
		if d.Server < 0 || d.Server >= m {
			return fmt.Errorf("online: state snapshot demand[%d] server %d outside [0,%d)", i, d.Server, m)
		}
		if d.Object < 0 || int(d.Object) >= n {
			return fmt.Errorf("online: state snapshot demand[%d] object %d outside [0,%d)", i, d.Object, n)
		}
		if d.Reads < 0 || d.Writes < 0 {
			return fmt.Errorf("online: state snapshot demand[%d] has negative frequencies", i)
		}
	}
	return nil
}

// ExportState snapshots the controller's mutable state in wire form.
func (c *Controller) ExportState() *StateSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	snap := &StateSnapshot{
		Capacity: append([]int64(nil), st.capacity...),
		Active:   append([]bool(nil), st.active...),
		Sizes:    append([]int64(nil), st.sizes...),
		Primary:  append([]int32(nil), st.primary...),
		Retired:  append([]bool(nil), st.retired...),
	}
	for i, cells := range st.demand {
		keys := make([]int32, 0, len(cells))
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			cell := cells[k]
			snap.Demand = append(snap.Demand, DemandEntry{
				Server: i, Object: k, Reads: cell.reads, Writes: cell.writes,
			})
		}
	}
	return snap
}

// Mask restricts the snapshot to a member subset: non-member servers keep
// their activity flags and primaries but lose their declared capacity (the
// materialized instance clamps them to exactly their primary load, so they
// can never host a surplus replica) and their demand. Regional games over
// masked snapshots therefore only ever place replicas on their own members —
// regional placements are disjoint by construction and merge without
// conflicts. Masking with every server a member is the identity, which is
// what makes a 1-shard cluster bit-identical to the single daemon.
func (s *StateSnapshot) Mask(members []int32) *StateSnapshot {
	member := make([]bool, len(s.Capacity))
	for _, i := range members {
		if int(i) < len(member) {
			member[i] = true
		}
	}
	out := &StateSnapshot{
		Capacity: append([]int64(nil), s.Capacity...),
		Active:   append([]bool(nil), s.Active...),
		Sizes:    append([]int64(nil), s.Sizes...),
		Primary:  append([]int32(nil), s.Primary...),
		Retired:  append([]bool(nil), s.Retired...),
	}
	for i := range out.Capacity {
		if !member[i] {
			out.Capacity[i] = 0
		}
	}
	for _, d := range s.Demand {
		if member[d.Server] {
			out.Demand = append(out.Demand, d)
		}
	}
	return out
}

// NewFromState builds a controller over an exported state snapshot — the
// shard daemon's entry point: the coordinator ships a masked StateSnapshot,
// the shard rebuilds its regional controller from it. The cost oracle is the
// receiver's own (both sides construct it from the shared instance
// configuration).
func NewFromState(cost replication.CostFn, snap *StateSnapshot, cfg Config) (*Controller, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if cost.N() < len(snap.Capacity) {
		return nil, fmt.Errorf("online: cost oracle covers %d servers, snapshot needs %d", cost.N(), len(snap.Capacity))
	}
	st := &state{
		cost:     cost,
		capacity: append([]int64(nil), snap.Capacity...),
		active:   append([]bool(nil), snap.Active...),
		sizes:    append([]int64(nil), snap.Sizes...),
		primary:  append([]int32(nil), snap.Primary...),
		retired:  append([]bool(nil), snap.Retired...),
		demand:   make([]map[int32]*demandCell, len(snap.Capacity)),
	}
	for i := range st.demand {
		st.demand[i] = map[int32]*demandCell{}
	}
	for _, d := range snap.Demand {
		if d.Reads == 0 && d.Writes == 0 {
			continue
		}
		st.demand[d.Server][d.Object] = &demandCell{reads: d.Reads, writes: d.Writes}
	}
	return newController(st, cfg)
}

// InstallPlacement carries an externally computed placement (per-object
// replica lists, Schema.Matrix form) onto the live instance and publishes it
// as a merge epoch: the coordinator installs the union of regional winners,
// a shard installs the carry the coordinator shipped with its assignment.
// Infeasible replicas are dropped by the carry-over (returned count); the
// installed placement becomes the drift baseline, like a solve.
func (c *Controller) InstallPlacement(matrix [][]int32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.epoch.Load()
	carried, dropped := cur.Problem.CarryOver(matrix)
	c.publishLocked(cur, &Epoch{Problem: cur.Problem, Schema: carried, Version: cur.Version + 1, Cause: CauseMerge})
	c.carriedDrops += int64(dropped)
	c.solvedSavings = carried.Savings()
	c.drift = 0
	return dropped
}

// InstallSchema publishes an externally carried schema as a merge epoch
// without re-carrying it: the cluster merge already built the carried
// schema (CarryOver plus the boundary exchange's refinements) against the
// mirror's problem, and carrying its matrix a second time would repeat the
// placement work just to reproduce the same schema. The schema must have
// been built against the controller's current Problem — the caller
// serializes installs with delta application; if the problem moved anyway,
// the matrix is re-carried as InstallPlacement would. dropped is the
// carry's drop count, folded into the controller's accounting.
func (c *Controller) InstallSchema(sch *replication.Schema, dropped int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.epoch.Load()
	if sch.Problem() != cur.Problem {
		carried, d := cur.Problem.CarryOver(sch.Matrix())
		sch, dropped = carried, dropped+d
	}
	c.publishLocked(cur, &Epoch{Problem: cur.Problem, Schema: sch, Version: cur.Version + 1, Cause: CauseMerge})
	c.carriedDrops += int64(dropped)
	c.solvedSavings = sch.Savings()
	c.drift = 0
	return dropped
}

// RouteDeltas splits a batch for per-region forwarding. Demand deltas go to
// the owning server's region; catalogue deltas (add/remove object) are
// global — every region's instance must agree on the object shape — and are
// replicated into every sub-batch. Membership deltas (server join/leave)
// cannot be forwarded piecemeal: they change the partition itself, so the
// caller must re-assign regions from fresh state instead of forwarding
// (membership reports whether the batch contains any).
func RouteDeltas(ds []Delta, regionOf func(server int) int, regions int) (perRegion [][]Delta, membership bool, err error) {
	perRegion = make([][]Delta, regions)
	for i, d := range ds {
		switch d.Kind {
		case KindServerJoin, KindServerLeave:
			membership = true
		case KindDemand:
			r := regionOf(d.Server)
			if r < 0 || r >= regions {
				return nil, false, fmt.Errorf("online: delta %d: server %d maps to region %d outside [0,%d)", i, d.Server, r, regions)
			}
			perRegion[r] = append(perRegion[r], d)
		default:
			for r := range perRegion {
				perRegion[r] = append(perRegion[r], d)
			}
		}
	}
	return perRegion, membership, nil
}
