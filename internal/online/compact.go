package online

import (
	"fmt"
	"sort"

	"repro/internal/replication"
)

// Compaction: where Mask keeps the full M×N shape and merely zeroes
// non-member capacity, Compact rebuilds the regional instance at M'×N' — the
// member servers, the objects they either own (primary) or demand, and the
// boundary servers that hold primaries of demanded objects — together with a
// dense index mapping in each direction. Shard-side arena construction,
// kernel rounds and distance-oracle rows are then all sized to the region;
// placements, payments and deltas cross the RPC boundary through the
// mapping.
//
// The two restrictions are solution-equivalent: an object nobody in the
// region demands and no member owns contributes no cost term and no
// candidate, and a boundary server enters with capacity 0, which the
// materialized instance clamps to exactly its primary load — it can anchor
// read/write distances but never host a surplus replica. Regional placements
// therefore remain disjoint across regions, exactly as under Mask.
//
// Compacting with every server a member is the identity: Servers and Objects
// are the identity mappings and State is a deep copy of the input snapshot.
// That property is what keeps a 1-shard cluster bit-identical to the single
// daemon, and is pinned by the property tests and fuzzer in export_test.go.

// CompactRegion is one regional sub-instance on the wire: the compacted
// snapshot plus the dense index mapping back to global coordinates.
// Servers[i'] is the global id of regional server i'; Objects[k'] likewise
// for objects. Both are strictly ascending at construction; AppendObject
// extends Objects as the coordinator allocates new global ids.
//
// The reverse indexes are built lazily and are not shipped. A CompactRegion
// is not safe for concurrent use — each owner (coordinator, shard) guards
// its copy with its own lock.
type CompactRegion struct {
	State   *StateSnapshot `json:"state"`
	Servers []int32        `json:"servers"`
	Objects []int32        `json:"objects"`

	serverOf map[int32]int32 // global -> local
	objectOf map[int32]int32 // global -> local
}

// Compact restricts the snapshot to a member subset, rebuilding it in
// region-local coordinates. Kept objects: every object whose primary is a
// member (retired ones included — their primary copy still occupies
// storage) plus every object a member demands. Kept servers: the members
// plus the boundary primaries of kept objects; boundary servers lose their
// declared capacity, Mask's rule. Member ids outside the snapshot are
// ignored, as Mask does. Demand order (sorted by server, then object) is
// preserved because both mappings are monotone.
func (s *StateSnapshot) Compact(members []int32) *CompactRegion {
	m, n := len(s.Capacity), len(s.Sizes)
	member := make([]bool, m)
	for _, i := range members {
		if i >= 0 && int(i) < m {
			member[i] = true
		}
	}
	keepObj := make([]bool, n)
	for k, p := range s.Primary {
		if member[p] {
			keepObj[k] = true
		}
	}
	for _, d := range s.Demand {
		if member[d.Server] {
			keepObj[d.Object] = true
		}
	}
	keepSrv := make([]bool, m)
	copy(keepSrv, member)
	for k, kept := range keepObj {
		if kept {
			keepSrv[s.Primary[k]] = true
		}
	}

	r := &CompactRegion{State: &StateSnapshot{}}
	srvOf := make([]int32, m)
	for i := range srvOf {
		srvOf[i] = -1
	}
	for i, kept := range keepSrv {
		if !kept {
			continue
		}
		srvOf[i] = int32(len(r.Servers))
		r.Servers = append(r.Servers, int32(i))
		cap := s.Capacity[i]
		if !member[i] {
			cap = 0
		}
		r.State.Capacity = append(r.State.Capacity, cap)
		r.State.Active = append(r.State.Active, s.Active[i])
	}
	objOf := make([]int32, n)
	for k := range objOf {
		objOf[k] = -1
	}
	for k, kept := range keepObj {
		if !kept {
			continue
		}
		objOf[k] = int32(len(r.Objects))
		r.Objects = append(r.Objects, int32(k))
		r.State.Sizes = append(r.State.Sizes, s.Sizes[k])
		r.State.Primary = append(r.State.Primary, srvOf[s.Primary[k]])
		r.State.Retired = append(r.State.Retired, s.Retired[k])
	}
	for _, d := range s.Demand {
		if !member[d.Server] {
			continue
		}
		r.State.Demand = append(r.State.Demand, DemandEntry{
			Server: int(srvOf[d.Server]),
			Object: objOf[d.Object],
			Reads:  d.Reads,
			Writes: d.Writes,
		})
	}
	return r
}

// ensureIndex builds the global→local reverse maps if absent. Idempotent;
// called under the owner's lock.
func (r *CompactRegion) ensureIndex() {
	if r.serverOf == nil {
		r.serverOf = make(map[int32]int32, len(r.Servers))
		for l, g := range r.Servers {
			r.serverOf[g] = int32(l)
		}
	}
	if r.objectOf == nil {
		r.objectOf = make(map[int32]int32, len(r.Objects))
		for l, g := range r.Objects {
			r.objectOf[g] = int32(l)
		}
	}
}

// LocalServer maps a global server id into the region.
func (r *CompactRegion) LocalServer(global int) (int, bool) {
	r.ensureIndex()
	l, ok := r.serverOf[int32(global)]
	return int(l), ok
}

// LocalObject maps a global object id into the region.
func (r *CompactRegion) LocalObject(global int32) (int32, bool) {
	r.ensureIndex()
	l, ok := r.objectOf[global]
	return l, ok
}

// GlobalServer maps a regional server index back to its global id.
func (r *CompactRegion) GlobalServer(local int) (int, bool) {
	if local < 0 || local >= len(r.Servers) {
		return 0, false
	}
	return int(r.Servers[local]), true
}

// GlobalObject maps a regional object index back to its global id.
func (r *CompactRegion) GlobalObject(local int32) (int32, bool) {
	if local < 0 || int(local) >= len(r.Objects) {
		return 0, false
	}
	return r.Objects[local], true
}

// AppendObject extends the object mapping with a newly allocated global id
// (the regional instance appends objects densely, so the new local id is the
// current N'). Both coordinator and shard apply the same extension as
// add-object deltas flow, keeping their copies aligned.
func (r *CompactRegion) AppendObject(global int32) int32 {
	r.ensureIndex()
	l := int32(len(r.Objects))
	r.Objects = append(r.Objects, global)
	r.objectOf[global] = l
	return l
}

// CarryToLocal translates a global placement matrix (rows per global object,
// replica lists of global server ids) into the region: one row per regional
// object, replicas restricted to mapped servers. Replicas on boundary
// servers survive translation and are then dropped by the carry-over's
// capacity check, mirroring Mask's treatment of non-member replicas.
func (r *CompactRegion) CarryToLocal(matrix [][]int32) [][]int32 {
	if matrix == nil {
		return nil
	}
	r.ensureIndex()
	out := make([][]int32, len(r.Objects))
	for l, g := range r.Objects {
		if int(g) >= len(matrix) || matrix[g] == nil {
			continue
		}
		row := make([]int32, 0, len(matrix[g]))
		for _, srv := range matrix[g] {
			if ls, ok := r.serverOf[srv]; ok {
				row = append(row, ls)
			}
		}
		out[l] = row
	}
	return out
}

// MatrixToGlobal translates a regional placement matrix back to global
// coordinates over n global objects. Objects outside the mapping get nil
// rows — the caller unions rows across regions.
func (r *CompactRegion) MatrixToGlobal(local [][]int32, n int) [][]int32 {
	out := make([][]int32, n)
	for l, row := range local {
		if l >= len(r.Objects) || row == nil {
			continue
		}
		g := r.Objects[l]
		grow := make([]int32, 0, len(row))
		for _, ls := range row {
			if int(ls) < len(r.Servers) {
				grow = append(grow, r.Servers[ls])
			}
		}
		out[g] = grow
	}
	return out
}

// PaymentsToGlobal accumulates a regional payment vector into a global one.
func (r *CompactRegion) PaymentsToGlobal(local []int64, into []int64) {
	for l, v := range local {
		if v == 0 || l >= len(r.Servers) {
			continue
		}
		g := r.Servers[l]
		if int(g) < len(into) {
			into[g] += v
		}
	}
}

// TranslateDeltas converts a coordinator-forwarded batch from global to
// region-local coordinates. Demand and remove-object deltas must reference
// mapped servers/objects; add-object deltas carry the coordinator-stamped
// global id in Object and extend the mapping. The extension is *not* applied
// immediately: the returned commit func applies it, and the caller invokes
// it only after the local batch was accepted by the controller — a rejected
// batch must leave the mapping exactly as it was.
func (r *CompactRegion) TranslateDeltas(ds []Delta) (local []Delta, commit func(), err error) {
	r.ensureIndex()
	var pending []int32 // global ids of objects appended by this batch
	lookupObject := func(g int32) (int32, bool) {
		if l, ok := r.objectOf[g]; ok {
			return l, true
		}
		for i, pg := range pending {
			if pg == g {
				return int32(len(r.Objects) + i), true
			}
		}
		return 0, false
	}
	local = make([]Delta, 0, len(ds))
	for i, d := range ds {
		switch d.Kind {
		case KindDemand:
			ls, ok := r.serverOf[int32(d.Server)]
			if !ok {
				return nil, nil, fmt.Errorf("online: delta %d: server %d is not in the region", i, d.Server)
			}
			lk, ok := lookupObject(d.Object)
			if !ok {
				return nil, nil, fmt.Errorf("online: delta %d: object %d is not in the region", i, d.Object)
			}
			d.Server, d.Object = int(ls), lk
			local = append(local, d)
		case KindAddObject:
			lp, ok := r.serverOf[int32(d.Primary)]
			if !ok {
				return nil, nil, fmt.Errorf("online: delta %d: add-object primary %d is not in the region", i, d.Primary)
			}
			pending = append(pending, d.Object)
			d.Primary = int(lp)
			d.Object = int32(len(r.Objects) + len(pending) - 1) // informational: apply() assigns ids densely
			local = append(local, d)
		case KindRemoveObject:
			lk, ok := lookupObject(d.Object)
			if !ok {
				return nil, nil, fmt.Errorf("online: delta %d: object %d is not in the region", i, d.Object)
			}
			d.Object = lk
			local = append(local, d)
		default:
			return nil, nil, fmt.Errorf("online: delta %d: %s deltas cannot be translated into a region", i, d.Kind)
		}
	}
	commit = func() {
		for _, g := range pending {
			r.AppendObject(g)
		}
	}
	return local, commit, nil
}

// RouteDeltasCompact is the mapping-aware successor of RouteDeltas: it
// splits a global batch into per-region batches keyed by shard id, consults
// each region's mapping, and decides when forwarding is impossible and the
// caller must re-assign from fresh state instead:
//
//   - membership deltas change the partition itself (as before);
//   - a demand delta for an object outside the owner's region means the
//     compaction no longer covers the live demand pattern — the region must
//     be rebuilt to include the object and its boundary primary.
//
// Add-object deltas are stamped with their freshly allocated global object
// id (ids are dense: nextObject is the mirror's N before the batch) and
// routed only to the primary's region, whose mapping is extended in place —
// the receiving shard applies the same extension, keeping the two aligned.
// Remove-object deltas go to every region that maps the object. When
// reassign or err is returned no forwarding may happen at all; the fresh
// assignment snapshot already reflects the whole batch.
func RouteDeltasCompact(ds []Delta, regionOf func(server int) int, regions map[int]*CompactRegion, nextObject int32) (perRegion map[int][]Delta, reassign bool, err error) {
	ids := make([]int, 0, len(regions))
	for id := range regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	perRegion = make(map[int][]Delta, len(regions))
	for i, d := range ds {
		switch d.Kind {
		case KindServerJoin, KindServerLeave:
			return nil, true, nil
		case KindDemand:
			r := regionOf(d.Server)
			reg := regions[r]
			if r < 0 || reg == nil {
				return nil, false, fmt.Errorf("online: delta %d: server %d maps to unknown region %d", i, d.Server, r)
			}
			if _, ok := reg.LocalObject(d.Object); !ok {
				return nil, true, nil
			}
			perRegion[r] = append(perRegion[r], d)
		case KindAddObject:
			r := regionOf(d.Primary)
			reg := regions[r]
			if r < 0 || reg == nil {
				return nil, false, fmt.Errorf("online: delta %d: add-object primary %d maps to unknown region %d", i, d.Primary, r)
			}
			d.Object = nextObject
			nextObject++
			reg.AppendObject(d.Object)
			perRegion[r] = append(perRegion[r], d)
		case KindRemoveObject:
			for _, r := range ids {
				if _, ok := regions[r].LocalObject(d.Object); ok {
					perRegion[r] = append(perRegion[r], d)
				}
			}
		default:
			return nil, false, fmt.Errorf("online: delta %d: unknown kind %q", i, d.Kind)
		}
	}
	return perRegion, false, nil
}

// NewFromCompact builds a regional controller from a compacted sub-instance:
// the snapshot is already in region coordinates, and the global cost oracle
// is restricted to the region's servers through the mapping. For a
// full-membership region SubsetCost returns the oracle unchanged, so the
// 1-shard cluster runs the very same code path as the single daemon.
func NewFromCompact(cost replication.CostFn, region *CompactRegion, cfg Config) (*Controller, error) {
	if region == nil || region.State == nil {
		return nil, fmt.Errorf("online: nil compact region")
	}
	if len(region.Servers) != len(region.State.Capacity) || len(region.Objects) != len(region.State.Sizes) {
		return nil, fmt.Errorf("online: compact region mapping %dx%d does not match state %dx%d",
			len(region.Servers), len(region.Objects), len(region.State.Capacity), len(region.State.Sizes))
	}
	for _, g := range region.Servers {
		if g < 0 || int(g) >= cost.N() {
			return nil, fmt.Errorf("online: compact region server %d outside cost oracle [0,%d)", g, cost.N())
		}
	}
	return NewFromState(replication.SubsetCost(cost, region.Servers), region.State, cfg)
}
