package online

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/distoracle"
	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/testutil"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestExportMaskRoundTrip pins the cluster's state-shipping contract: a
// controller rebuilt from an exported snapshot materializes the identical
// problem, and a full-membership mask is the identity.
func TestExportMaskRoundTrip(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(31))
	a, err := New(p.Cost, p.Work, p.Capacity, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.ApplyDeltas([]Delta{
		{Kind: KindDemand, Server: 2, Object: 5, Reads: 99, Writes: 3},
		{Kind: KindServerLeave, Server: 7},
	}); err != nil {
		t.Fatal(err)
	}

	snap := a.ExportState()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	all := make([]int32, p.M)
	for i := range all {
		all[i] = int32(i)
	}
	if !reflect.DeepEqual(snap, snap.Mask(all)) {
		t.Fatal("full-membership mask is not the identity")
	}

	b, err := NewFromState(p.Cost, snap, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	pa, pb := a.Current().Problem, b.Current().Problem
	if !reflect.DeepEqual(pa.Capacity, pb.Capacity) {
		t.Fatal("capacities diverged through export")
	}
	if err := a.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Current().Schema.Matrix(), b.Current().Schema.Matrix()) {
		t.Fatal("rebuilt controller solved to a different placement")
	}

	// A partial mask zeroes non-member capacity and drops their demand.
	members := []int32{0, 1, 2}
	masked := snap.Mask(members)
	for i, c := range masked.Capacity {
		if i <= 2 {
			if c != snap.Capacity[i] {
				t.Fatalf("member %d capacity changed: %d -> %d", i, snap.Capacity[i], c)
			}
		} else if c != 0 {
			t.Fatalf("non-member %d kept capacity %d", i, c)
		}
	}
	for _, d := range masked.Demand {
		if d.Server > 2 {
			t.Fatalf("non-member demand survived the mask: %+v", d)
		}
	}
}

// TestInstallPlacementPublishesMerge pins the mirror path the coordinator
// uses: installing a placement publishes exactly one epoch with CauseMerge
// and resets drift.
func TestInstallPlacementPublishesMerge(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(37))
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	matrix := ctrl.Current().Schema.Matrix()
	v := ctrl.Current().Version
	if dropped := ctrl.InstallPlacement(matrix); dropped != 0 {
		t.Fatalf("feasible placement dropped %d replicas", dropped)
	}
	e := ctrl.Current()
	if e.Version != v+1 {
		t.Fatalf("install published version %d, want %d", e.Version, v+1)
	}
	if e.Cause != CauseMerge {
		t.Fatalf("install cause %q, want %q", e.Cause, CauseMerge)
	}
	if drift := ctrl.Metrics().Drift; drift != 0 {
		t.Fatalf("drift after install = %v, want 0", drift)
	}
}

// TestRouteDeltasSplitsByRegion pins the coordinator's forwarding table.
func TestRouteDeltasSplitsByRegion(t *testing.T) {
	regionOf := func(server int) int {
		if server < 4 {
			return 0
		}
		return 1
	}
	ds := []Delta{
		{Kind: KindDemand, Server: 1, Object: 0, Reads: 1},
		{Kind: KindDemand, Server: 5, Object: 2, Reads: 1},
		{Kind: KindAddObject, Object: 9, Size: 4, Primary: 0},
	}
	per, membership, err := RouteDeltas(ds, regionOf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if membership {
		t.Fatal("demand-only batch flagged as membership")
	}
	if len(per[0]) != 2 || len(per[1]) != 2 {
		t.Fatalf("split %d/%d, want 2/2 (catalogue delta replicated)", len(per[0]), len(per[1]))
	}
	if _, membership, _ = RouteDeltas([]Delta{{Kind: KindServerLeave, Server: 1}}, regionOf, 2); !membership {
		t.Fatal("leave delta not flagged as membership")
	}
	if _, _, err = RouteDeltas([]Delta{{Kind: KindDemand, Server: 2, Object: 0, Reads: 1}}, func(int) int { return -1 }, 2); err == nil {
		t.Fatal("unassigned server routed without error")
	}
}

// TestMetricsRowCacheSurfaced pins the /metrics satellite: when the cost
// oracle is the lazy CSR with its LRU row cache, the controller's metrics
// expose the hit/miss/eviction counters as row_cache.
func TestMetricsRowCacheSurfaced(t *testing.T) {
	testutil.LeakCheck(t)
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: 16, Objects: 40, Requests: 4000, RWRatio: 0.8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(6)
	g, err := topology.Random(16, 0.3, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := distoracle.Build(g, distoracle.Options{Mode: distoracle.ModeCSR})
	if err != nil {
		t.Fatal(err)
	}
	caps, err := replication.GenerateCapacities(w, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	p, err := replication.NewProblem(cost, w, caps)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := ctrl.Metrics()
	if m.RowCache == nil {
		t.Fatal("metrics over a CSR oracle carry no row_cache")
	}
	if m.RowCache.Hits+m.RowCache.Misses == 0 {
		t.Fatal("row cache counters all zero after a solve")
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["row_cache"]; !ok {
		t.Fatalf("row_cache missing from metrics JSON: %s", blob)
	}

	// A dense oracle has no counters to surface, and must not fabricate any.
	pd := testutil.MustBuild(testutil.Small(41))
	dense, err := New(pd.Cost, pd.Work, pd.Capacity, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	if dense.Metrics().RowCache != nil {
		t.Fatal("dense oracle reported a row cache")
	}
}
