package online

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/distoracle"
	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/testutil"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestExportMaskRoundTrip pins the cluster's state-shipping contract: a
// controller rebuilt from an exported snapshot materializes the identical
// problem, and a full-membership mask is the identity.
func TestExportMaskRoundTrip(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(31))
	a, err := New(p.Cost, p.Work, p.Capacity, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.ApplyDeltas([]Delta{
		{Kind: KindDemand, Server: 2, Object: 5, Reads: 99, Writes: 3},
		{Kind: KindServerLeave, Server: 7},
	}); err != nil {
		t.Fatal(err)
	}

	snap := a.ExportState()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	all := make([]int32, p.M)
	for i := range all {
		all[i] = int32(i)
	}
	if !reflect.DeepEqual(snap, snap.Mask(all)) {
		t.Fatal("full-membership mask is not the identity")
	}

	b, err := NewFromState(p.Cost, snap, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	pa, pb := a.Current().Problem, b.Current().Problem
	if !reflect.DeepEqual(pa.Capacity, pb.Capacity) {
		t.Fatal("capacities diverged through export")
	}
	if err := a.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Current().Schema.Matrix(), b.Current().Schema.Matrix()) {
		t.Fatal("rebuilt controller solved to a different placement")
	}

	// A partial mask zeroes non-member capacity and drops their demand.
	members := []int32{0, 1, 2}
	masked := snap.Mask(members)
	for i, c := range masked.Capacity {
		if i <= 2 {
			if c != snap.Capacity[i] {
				t.Fatalf("member %d capacity changed: %d -> %d", i, snap.Capacity[i], c)
			}
		} else if c != 0 {
			t.Fatalf("non-member %d kept capacity %d", i, c)
		}
	}
	for _, d := range masked.Demand {
		if d.Server > 2 {
			t.Fatalf("non-member demand survived the mask: %+v", d)
		}
	}
}

// TestInstallPlacementPublishesMerge pins the mirror path the coordinator
// uses: installing a placement publishes exactly one epoch with CauseMerge
// and resets drift.
func TestInstallPlacementPublishesMerge(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(37))
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	matrix := ctrl.Current().Schema.Matrix()
	v := ctrl.Current().Version
	if dropped := ctrl.InstallPlacement(matrix); dropped != 0 {
		t.Fatalf("feasible placement dropped %d replicas", dropped)
	}
	e := ctrl.Current()
	if e.Version != v+1 {
		t.Fatalf("install published version %d, want %d", e.Version, v+1)
	}
	if e.Cause != CauseMerge {
		t.Fatalf("install cause %q, want %q", e.Cause, CauseMerge)
	}
	if drift := ctrl.Metrics().Drift; drift != 0 {
		t.Fatalf("drift after install = %v, want 0", drift)
	}
}

// TestRouteDeltasSplitsByRegion pins the coordinator's forwarding table.
func TestRouteDeltasSplitsByRegion(t *testing.T) {
	regionOf := func(server int) int {
		if server < 4 {
			return 0
		}
		return 1
	}
	ds := []Delta{
		{Kind: KindDemand, Server: 1, Object: 0, Reads: 1},
		{Kind: KindDemand, Server: 5, Object: 2, Reads: 1},
		{Kind: KindAddObject, Object: 9, Size: 4, Primary: 0},
	}
	per, membership, err := RouteDeltas(ds, regionOf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if membership {
		t.Fatal("demand-only batch flagged as membership")
	}
	if len(per[0]) != 2 || len(per[1]) != 2 {
		t.Fatalf("split %d/%d, want 2/2 (catalogue delta replicated)", len(per[0]), len(per[1]))
	}
	if _, membership, _ = RouteDeltas([]Delta{{Kind: KindServerLeave, Server: 1}}, regionOf, 2); !membership {
		t.Fatal("leave delta not flagged as membership")
	}
	if _, _, err = RouteDeltas([]Delta{{Kind: KindDemand, Server: 2, Object: 0, Reads: 1}}, func(int) int { return -1 }, 2); err == nil {
		t.Fatal("unassigned server routed without error")
	}
}

// TestMetricsRowCacheSurfaced pins the /metrics satellite: when the cost
// oracle is the lazy CSR with its LRU row cache, the controller's metrics
// expose the hit/miss/eviction counters as row_cache.
func TestMetricsRowCacheSurfaced(t *testing.T) {
	testutil.LeakCheck(t)
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: 16, Objects: 40, Requests: 4000, RWRatio: 0.8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(6)
	g, err := topology.Random(16, 0.3, topology.DefaultWeights, r)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := distoracle.Build(g, distoracle.Options{Mode: distoracle.ModeCSR})
	if err != nil {
		t.Fatal(err)
	}
	caps, err := replication.GenerateCapacities(w, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	p, err := replication.NewProblem(cost, w, caps)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := ctrl.Metrics()
	if m.RowCache == nil {
		t.Fatal("metrics over a CSR oracle carry no row_cache")
	}
	if m.RowCache.Hits+m.RowCache.Misses == 0 {
		t.Fatal("row cache counters all zero after a solve")
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["row_cache"]; !ok {
		t.Fatalf("row_cache missing from metrics JSON: %s", blob)
	}

	// A dense oracle has no counters to surface, and must not fabricate any.
	pd := testutil.MustBuild(testutil.Small(41))
	dense, err := New(pd.Cost, pd.Work, pd.Capacity, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	if dense.Metrics().RowCache != nil {
		t.Fatal("dense oracle reported a row cache")
	}
}

// rowsEqual compares two placement matrices row by row, treating nil and
// empty rows alike (translation materializes empty rows that the source may
// have left nil).
func rowsEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestCompactFullMembershipIdentity pins the determinism boundary of the
// compaction: compacting with every server a member yields the identity
// index mappings and a state deep-equal to both the input snapshot and the
// full-membership mask. This is the property that keeps a 1-shard cluster
// bit-identical to the single daemon.
func TestCompactFullMembershipIdentity(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(31))
	a, err := New(p.Cost, p.Work, p.Capacity, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.ApplyDeltas([]Delta{
		{Kind: KindDemand, Server: 3, Object: 7, Reads: 12, Writes: 1},
		{Kind: KindServerLeave, Server: 11},
	}); err != nil {
		t.Fatal(err)
	}
	snap := a.ExportState()

	all := make([]int32, p.M)
	for i := range all {
		all[i] = int32(i)
	}
	full := snap.Compact(all)
	for i, g := range full.Servers {
		if int(g) != i {
			t.Fatalf("full-membership server mapping is not the identity: Servers[%d] = %d", i, g)
		}
	}
	for k, g := range full.Objects {
		if int(g) != k {
			t.Fatalf("full-membership object mapping is not the identity: Objects[%d] = %d", k, g)
		}
	}
	if !reflect.DeepEqual(full.State, snap) {
		t.Fatal("full-membership compaction changed the snapshot")
	}
	if !reflect.DeepEqual(full.State, snap.Mask(all)) {
		t.Fatal("full-membership compaction and mask disagree")
	}

	// The compacted controller must follow the single daemon exactly.
	b, err := NewFromCompact(p.Cost, full, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Current().Schema.Matrix(), b.Current().Schema.Matrix()) {
		t.Fatal("full-membership compact controller solved to a different placement")
	}
	if !reflect.DeepEqual(a.LastSolvePayments(), b.LastSolvePayments()) {
		t.Fatal("full-membership compact controller paid differently")
	}
}

// TestCompactRoundTripPlacementsAndPayments pins the translation contract
// the cluster merge depends on: a regional solve over a compacted
// sub-instance translates to global coordinates and back without losing or
// inventing a single replica or payment unit.
func TestCompactRoundTripPlacementsAndPayments(t *testing.T) {
	testutil.LeakCheck(t)
	p := testutil.MustBuild(testutil.Small(53))
	a, err := New(p.Cost, p.Work, p.Capacity, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	snap := a.ExportState()

	members := []int32{1, 3, 4, 7, 9, 12}
	comp := snap.Compact(members)
	if err := comp.State.Validate(); err != nil {
		t.Fatalf("compacted state invalid: %v", err)
	}
	// The mapping covers every member and round-trips in both directions.
	for _, g := range members {
		l, ok := comp.LocalServer(int(g))
		if !ok {
			t.Fatalf("member %d missing from the compacted region", g)
		}
		if back, ok := comp.GlobalServer(l); !ok || back != int(g) {
			t.Fatalf("server %d -> %d -> %d did not round-trip", g, l, back)
		}
	}
	for l := range comp.Objects {
		g, ok := comp.GlobalObject(int32(l))
		if !ok {
			t.Fatalf("local object %d has no global id", l)
		}
		if back, ok := comp.LocalObject(g); !ok || back != int32(l) {
			t.Fatalf("object %d -> %d -> %d did not round-trip", l, g, back)
		}
	}

	ctrl, err := NewFromCompact(p.Cost, comp, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	local := ctrl.Current().Schema.Matrix()
	global := comp.MatrixToGlobal(local, p.N)
	for g, row := range global {
		if row != nil {
			if _, ok := comp.LocalObject(int32(g)); !ok {
				t.Fatalf("translation invented global object %d", g)
			}
		}
	}
	if back := comp.CarryToLocal(global); !rowsEqual(local, back) {
		t.Fatal("placement did not round-trip through the global translation")
	}

	pay := ctrl.LastSolvePayments()
	if pay == nil {
		t.Fatal("regional solve produced no payments")
	}
	globalPay := make([]int64, p.M)
	comp.PaymentsToGlobal(pay, globalPay)
	var localSum, globalSum int64
	for l, v := range pay {
		localSum += v
		g, _ := comp.GlobalServer(l)
		if globalPay[g] != v {
			t.Fatalf("payment of local server %d (global %d): %d translated to %d", l, g, v, globalPay[g])
		}
	}
	for _, v := range globalPay {
		globalSum += v
	}
	if localSum != globalSum {
		t.Fatalf("payment mass changed in translation: %d -> %d", localSum, globalSum)
	}
}

// FuzzCompactRoundTrip explores Compact over arbitrary snapshots and member
// subsets: the index mappings must stay strictly ascending and bijective,
// member demand must survive translation exactly, placement matrices and
// payment vectors must round-trip through the global coordinates, and the
// full-membership compaction must stay the identity (and agree with Mask).
// Run with `go test -fuzz=FuzzCompactRoundTrip ./internal/online` to
// explore; the seed corpus runs on every plain `go test`.
func FuzzCompactRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(0x000f), []byte{1, 2, 3, 4, 5, 6})
	f.Add(int64(7), uint16(0x00a5), []byte{0xff, 0x00, 0x10, 0x81})
	f.Add(int64(13), uint16(0x0001), []byte{})
	f.Add(int64(42), uint16(0xffff), []byte{9, 9, 9, 2, 250, 17, 3})

	f.Fuzz(func(t *testing.T, seed int64, memberBits uint16, ops []byte) {
		m := 2 + int(uint64(seed)%7)
		n := int(uint64(seed)/7) % 13
		b := func(i int) byte {
			if len(ops) == 0 {
				return byte(i * 31)
			}
			return ops[i%len(ops)]
		}
		snap := &StateSnapshot{
			Capacity: make([]int64, m),
			Active:   make([]bool, m),
		}
		// Append-built so a zero-object snapshot keeps nil slices, matching
		// what ExportState and Compact produce for empty catalogues.
		for k := 0; k < n; k++ {
			snap.Sizes = append(snap.Sizes, 0)
			snap.Primary = append(snap.Primary, 0)
			snap.Retired = append(snap.Retired, false)
		}
		for i := 0; i < m; i++ {
			snap.Capacity[i] = int64(b(i) % 64)
			snap.Active[i] = b(i+1)%4 != 0
		}
		for k := 0; k < n; k++ {
			snap.Sizes[k] = 1 + int64(b(k+2)%16)
			snap.Primary[k] = int32(int(b(k+3)) % m)
			snap.Retired[k] = b(k+4)%8 == 0
		}
		for i := 0; i < m; i++ {
			for k := 0; k < n; k++ {
				v := b(i*n + k + 5)
				if v%3 == 0 {
					continue
				}
				snap.Demand = append(snap.Demand, DemandEntry{
					Server: i, Object: int32(k), Reads: int64(v % 50), Writes: int64(v % 7),
				})
			}
		}
		if err := snap.Validate(); err != nil {
			t.Fatalf("generator built an invalid snapshot: %v", err)
		}

		member := make([]bool, m)
		var members []int32
		for i := 0; i < m; i++ {
			if memberBits>>(i%16)&1 == 1 {
				member[i] = true
				members = append(members, int32(i))
			}
		}
		if len(members) == 0 {
			i := int(uint64(seed) % uint64(m))
			member[i] = true
			members = append(members, int32(i))
		}

		comp := snap.Compact(members)
		if err := comp.State.Validate(); err != nil {
			t.Fatalf("compacted state invalid: %v", err)
		}
		for l := 1; l < len(comp.Servers); l++ {
			if comp.Servers[l] <= comp.Servers[l-1] {
				t.Fatalf("server mapping not strictly ascending at %d: %v", l, comp.Servers)
			}
		}
		for l := 1; l < len(comp.Objects); l++ {
			if comp.Objects[l] <= comp.Objects[l-1] {
				t.Fatalf("object mapping not strictly ascending at %d: %v", l, comp.Objects)
			}
		}
		for l, g := range comp.Servers {
			if back, ok := comp.LocalServer(int(g)); !ok || back != l {
				t.Fatalf("server %d -> %d -> %d did not round-trip", l, g, back)
			}
			if member[g] {
				if comp.State.Capacity[l] != snap.Capacity[g] {
					t.Fatalf("member %d capacity changed: %d -> %d", g, snap.Capacity[g], comp.State.Capacity[l])
				}
			} else if comp.State.Capacity[l] != 0 {
				t.Fatalf("boundary server %d kept capacity %d", g, comp.State.Capacity[l])
			}
		}
		for _, g := range members {
			if _, ok := comp.LocalServer(int(g)); !ok {
				t.Fatalf("member %d missing from the region", g)
			}
		}
		for l, g := range comp.Objects {
			if back, ok := comp.LocalObject(g); !ok || back != int32(l) {
				t.Fatalf("object %d -> %d -> %d did not round-trip", l, g, back)
			}
			if gp := snap.Primary[g]; comp.Servers[comp.State.Primary[l]] != gp {
				t.Fatalf("object %d primary translated to %d, want %d", g, comp.Servers[comp.State.Primary[l]], gp)
			}
		}

		// Member demand survives translation exactly, in order.
		var back []DemandEntry
		for _, d := range comp.State.Demand {
			gs, ok1 := comp.GlobalServer(d.Server)
			gk, ok2 := comp.GlobalObject(d.Object)
			if !ok1 || !ok2 {
				t.Fatalf("compacted demand %+v references unmapped coordinates", d)
			}
			back = append(back, DemandEntry{Server: gs, Object: gk, Reads: d.Reads, Writes: d.Writes})
		}
		var want []DemandEntry
		for _, d := range snap.Demand {
			if member[d.Server] {
				want = append(want, d)
			}
		}
		if !reflect.DeepEqual(back, want) {
			t.Fatalf("demand did not survive compaction:\n got %v\nwant %v", back, want)
		}

		// An arbitrary regional placement round-trips through the global
		// coordinates, and so does an arbitrary payment vector.
		local := make([][]int32, len(comp.Objects))
		for l := range local {
			if b(l+13)%5 == 0 {
				continue
			}
			row := make([]int32, 0, len(comp.Servers))
			for srv := range comp.Servers {
				if b(l*7+srv+11)%2 == 1 {
					row = append(row, int32(srv))
				}
			}
			local[l] = row
		}
		global := comp.MatrixToGlobal(local, n)
		for g, row := range global {
			if row != nil {
				if _, ok := comp.LocalObject(int32(g)); !ok {
					t.Fatalf("translation invented global object %d", g)
				}
			}
		}
		if got := comp.CarryToLocal(global); !rowsEqual(local, got) {
			t.Fatalf("matrix did not round-trip:\n got %v\nwant %v", got, local)
		}

		pay := make([]int64, len(comp.Servers))
		var localSum int64
		for l := range pay {
			pay[l] = int64(b(l + 17) % 100)
			localSum += pay[l]
		}
		globalPay := make([]int64, m)
		comp.PaymentsToGlobal(pay, globalPay)
		var globalSum int64
		for _, v := range globalPay {
			globalSum += v
		}
		if localSum != globalSum {
			t.Fatalf("payment mass changed in translation: %d -> %d", localSum, globalSum)
		}
		for l, v := range pay {
			if globalPay[comp.Servers[l]] != v {
				t.Fatalf("payment of local %d: %d translated to %d", l, v, globalPay[comp.Servers[l]])
			}
		}

		// Full membership: Compact is the identity and agrees with Mask.
		all := make([]int32, m)
		for i := range all {
			all[i] = int32(i)
		}
		full := snap.Compact(all)
		if len(full.Servers) != m || len(full.Objects) != n {
			t.Fatalf("full-membership compaction kept %dx%d of %dx%d", len(full.Servers), len(full.Objects), m, n)
		}
		if !reflect.DeepEqual(full.State, snap) {
			t.Fatal("full-membership compaction changed the snapshot")
		}
		if !reflect.DeepEqual(full.State, snap.Mask(all)) {
			t.Fatal("full-membership compaction and mask disagree")
		}
	})
}
