package online

import (
	"fmt"

	"repro/internal/replication"
)

// Cause labels why an epoch was published.
type Cause string

// The epoch causes. CauseShutdown never labels an epoch; it only appears on
// the terminal Update a draining controller sends to its subscribers.
const (
	CauseInit     Cause = "init"
	CauseDeltas   Cause = "deltas"
	CauseSolve    Cause = "solve"
	CauseRestore  Cause = "restore"
	CauseMerge    Cause = "merge"
	CauseShutdown Cause = "shutdown"
)

// Epoch is one immutable (instance, placement) generation of the controller.
// Readers load it with a single atomic pointer read; writers build a fresh
// Epoch and publish it — nothing reachable from a published Epoch is ever
// mutated. Beyond the served state it carries its provenance: the version,
// the cause, and (for delta epochs) the workload delta batch that produced
// it, so the journal can replay the placement's history to subscribers.
type Epoch struct {
	Problem *replication.Problem
	Schema  *replication.Schema
	// Version increments by exactly one on every publish (delta batch,
	// solve, restore) — the subscription protocol's gapless sequence.
	Version uint64
	// Cause reports what published this epoch.
	Cause Cause
	// Deltas is the workload delta batch that produced this epoch; nil for
	// init, solve and restore epochs.
	Deltas []Delta
}

// Route answers "which server does server i read object k from" against this
// epoch's placement, via the canonical replication.Nearest rule. It never
// allocates on the happy path; batch callers route every pair against one
// epoch so a concurrent swap cannot tear the batch.
func (e *Epoch) Route(server int, object int32) (int32, error) {
	if server < 0 || server >= e.Problem.M {
		return 0, fmt.Errorf("online: server %d outside [0,%d)", server, e.Problem.M)
	}
	if object < 0 || int(object) >= e.Problem.N {
		return 0, fmt.Errorf("online: object %d outside [0,%d)", object, e.Problem.N)
	}
	return replication.Nearest(e.Problem.Cost, e.Schema.Replicas(object), server), nil
}

// ReplicaRef names one (object, server) placement cell on the wire.
type ReplicaRef struct {
	Object int32 `json:"k"`
	Server int32 `json:"s"`
}

// ObjectMeta describes an object appended to the catalogue mid-stream.
type ObjectMeta struct {
	Object  int32 `json:"object"`
	Primary int32 `json:"primary"`
	Size    int64 `json:"size"`
}

// PlacementSnapshot is the compact wire form of a full placement: the
// per-object replica sets (each sorted ascending, primary included)
// flattened into one array with an offsets table — two int slices instead of
// N nested ones, cheap to encode and to rebuild a routing table from.
type PlacementSnapshot struct {
	Servers  int      `json:"servers"`
	Objects  int      `json:"objects"`
	Offsets  []uint32 `json:"offsets"`  // len Objects+1; object k's replicas are Replicas[Offsets[k]:Offsets[k+1]]
	Replicas []int32  `json:"replicas"` // sorted server ids per object
}

// ReplicaSet returns object k's replica slice inside the snapshot.
func (ps *PlacementSnapshot) ReplicaSet(k int) []int32 {
	return ps.Replicas[ps.Offsets[k]:ps.Offsets[k+1]]
}

// Validate checks the snapshot's internal consistency.
func (ps *PlacementSnapshot) Validate() error {
	if ps.Servers < 1 || ps.Objects < 0 {
		return fmt.Errorf("online: snapshot shape %dx%d invalid", ps.Servers, ps.Objects)
	}
	if len(ps.Offsets) != ps.Objects+1 || ps.Offsets[0] != 0 {
		return fmt.Errorf("online: snapshot offsets malformed")
	}
	for k := 0; k < ps.Objects; k++ {
		lo, hi := ps.Offsets[k], ps.Offsets[k+1]
		if lo > hi || int(hi) > len(ps.Replicas) {
			return fmt.Errorf("online: snapshot offsets not monotone at object %d", k)
		}
		if lo == hi {
			return fmt.Errorf("online: object %d has no replicas in snapshot", k)
		}
		for i := lo + 1; i < hi; i++ {
			if ps.Replicas[i-1] >= ps.Replicas[i] {
				return fmt.Errorf("online: object %d replica set unsorted in snapshot", k)
			}
		}
	}
	if int(ps.Offsets[ps.Objects]) != len(ps.Replicas) {
		return fmt.Errorf("online: snapshot replica array length %d != final offset %d",
			len(ps.Replicas), ps.Offsets[ps.Objects])
	}
	return nil
}

// Diff is the placement change between two consecutive epochs, in the form a
// routing table applies locally: servers joined the system, objects were
// appended, replicas were placed or removed. Primaries never move for
// existing objects, so object metadata is only carried for new arrivals.
type Diff struct {
	// From is the version this diff applies on top of (always Version-1 of
	// the enclosing Update); clients on any other version must resync.
	From uint64 `json:"from"`
	// Servers is the system size M after this epoch (M only grows).
	Servers int `json:"servers"`
	// NewObjects are catalogue appends, in id order starting at the previous
	// epoch's object count; each starts as primary-only before Place applies.
	NewObjects []ObjectMeta `json:"new_objects,omitempty"`
	// Place and Remove are the replica-set changes, each sorted by
	// (object, server) for deterministic application.
	Place  []ReplicaRef `json:"place,omitempty"`
	Remove []ReplicaRef `json:"remove,omitempty"`
}

// Update is one element of the epoch stream. Exactly one of Snapshot or Diff
// is set, except on a terminal update (a draining controller's goodbye),
// which carries neither.
type Update struct {
	Version uint64 `json:"version"`
	Cause   Cause  `json:"cause"`
	// Snapshot is the full placement at Version; sent when the subscriber's
	// version is too old for the journal (or unknown).
	Snapshot *PlacementSnapshot `json:"snapshot,omitempty"`
	// Diff is the incremental change from Version-1 to Version.
	Diff *Diff `json:"diff,omitempty"`
	// Deltas is the workload delta batch behind a deltas-caused epoch —
	// informational for subscribers that track demand, ignored by routing.
	Deltas []Delta `json:"deltas,omitempty"`
	// Terminal marks the stream's end: the controller is draining.
	Terminal bool `json:"terminal,omitempty"`
}

// snapshotOf flattens a schema's replica sets into the wire form.
func snapshotOf(e *Epoch) *PlacementSnapshot {
	p, s := e.Problem, e.Schema
	ps := &PlacementSnapshot{
		Servers: p.M,
		Objects: p.N,
		Offsets: make([]uint32, p.N+1),
	}
	total := 0
	for k := 0; k < p.N; k++ {
		total += len(s.Replicas(int32(k)))
	}
	ps.Replicas = make([]int32, 0, total)
	for k := 0; k < p.N; k++ {
		ps.Offsets[k] = uint32(len(ps.Replicas))
		ps.Replicas = append(ps.Replicas, s.Replicas(int32(k))...)
	}
	ps.Offsets[p.N] = uint32(len(ps.Replicas))
	return ps
}

// SnapshotUpdate renders the epoch as a full-snapshot stream element.
func (e *Epoch) SnapshotUpdate() *Update {
	return &Update{Version: e.Version, Cause: e.Cause, Snapshot: snapshotOf(e)}
}

// diffEpochs computes the placement diff from prev to next. Replica lists on
// both sides are sorted, so each object diffs with one two-pointer merge;
// objects beyond prev's catalogue diff against their implicit primary-only
// initial set.
func diffEpochs(prev, next *Epoch) *Diff {
	d := &Diff{From: prev.Version, Servers: next.Problem.M}
	for k := prev.Problem.N; k < next.Problem.N; k++ {
		d.NewObjects = append(d.NewObjects, ObjectMeta{
			Object:  int32(k),
			Primary: next.Problem.Work.Primary[k],
			Size:    next.Problem.Work.ObjectSize[k],
		})
	}
	var primaryOnly [1]int32
	for k := 0; k < next.Problem.N; k++ {
		var old []int32
		if k < prev.Problem.N {
			old = prev.Schema.Replicas(int32(k))
		} else {
			primaryOnly[0] = next.Problem.Work.Primary[k]
			old = primaryOnly[:]
		}
		cur := next.Schema.Replicas(int32(k))
		i, j := 0, 0
		for i < len(old) || j < len(cur) {
			switch {
			case j == len(cur) || (i < len(old) && old[i] < cur[j]):
				d.Remove = append(d.Remove, ReplicaRef{Object: int32(k), Server: old[i]})
				i++
			case i == len(old) || cur[j] < old[i]:
				d.Place = append(d.Place, ReplicaRef{Object: int32(k), Server: cur[j]})
				j++
			default: // equal: replica unchanged
				i++
				j++
			}
		}
	}
	return d
}
