// Package online is the dynamic replica-placement controller behind the
// agtramd daemon. It owns a mutable workload (the delta-mutated state), the
// immutable DRP instance materialized from it, and the current placement —
// published together as an immutable, versioned Epoch behind an atomic
// pointer, so the routing hot path never takes a lock.
//
// Life of a delta batch: the batch is validated and applied on a clone of
// the state (all-or-nothing), a fresh Problem is materialized, the live
// placement is carried over onto it (infeasible replicas dropped — PR 3's
// eviction semantics), and the new Epoch is published. The controller then
// measures drift — how far the carried placement's savings fell below the
// savings achieved at the last solve — and, past the configured threshold,
// schedules a debounced re-solve through the solver registry. Solves run on
// a Snapshot of the instance, so deltas and routes proceed concurrently;
// when a solve finishes, its placement is published as the next epoch (or
// carried over once more if deltas landed mid-solve).
//
// Every publish also appends a wire-encodable Update — the placement diff
// that turned epoch V-1 into V — to a bounded journal and fans it out to
// subscribers (Subscribe), so clients replicate the placement locally and
// answer nearest-replica lookups without a server round-trip; see
// internal/routing for the client side.
package online

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distoracle"
	"repro/internal/faultnet"
	"repro/internal/replication"
	"repro/internal/solver"
	"repro/internal/workload"
)

// Config tunes the controller.
type Config struct {
	// Method is the solver registry name; empty means "agt-ram".
	Method string
	// Engine, Workers, Seed, RoundTimeout and Faults pass through to
	// solver.Options on every re-solve.
	Engine       string
	Workers      int
	Seed         int64
	RoundTimeout time.Duration
	Faults       *faultnet.Config
	// DriftThreshold is the drift (percentage points of savings, see
	// Metrics.Drift) past which a background re-solve is scheduled.
	// Zero or negative disables automatic solves; SolveNow still works.
	DriftThreshold float64
	// SolveDebounce is the minimum spacing between automatic solves, so a
	// delta storm coalesces into one re-solve instead of one per batch.
	SolveDebounce time.Duration
	// GlauberSweeps overrides the glauber method's sweep budget (0 keeps the
	// solver's adaptive default, which scales with the instance size).
	GlauberSweeps int
	// WarmStart seeds re-solves with the live placement instead of solving
	// cold. Cold solves are deterministic in the materialized problem alone;
	// warm solves additionally depend on solve timing (which placement was
	// live), trading reproducibility for less placement churn.
	WarmStart bool
	// Journal is the epoch-journal depth: how many recent placement diffs
	// are kept for subscriber replay (DefaultJournal when zero). Subscribers
	// further behind resync with a full snapshot.
	Journal int
}

// Applied reports what a delta batch did.
type Applied struct {
	// Applied is the number of deltas in the batch (batches are atomic:
	// all applied, or none on error).
	Applied int `json:"applied"`
	// Dropped counts live replicas that became infeasible under the new
	// instance and were evicted during carry-over.
	Dropped int `json:"dropped"`
	// Drift is the controller's drift after the batch (see Metrics.Drift).
	Drift float64 `json:"drift"`
	// Version is the published Epoch's version.
	Version uint64 `json:"version"`
	// SolveScheduled reports whether this batch pushed drift past the
	// threshold and kicked the background solver.
	SolveScheduled bool `json:"solve_scheduled"`
}

// Metrics is a point-in-time controller snapshot.
type Metrics struct {
	Version       uint64  `json:"version"`
	Servers       int     `json:"servers"`
	ActiveServers int     `json:"active_servers"`
	Objects       int     `json:"objects"`
	Retired       int     `json:"retired_objects"`
	OTC           int64   `json:"otc"`
	BaseOTC       int64   `json:"base_otc"`
	Savings       float64 `json:"savings_percent"`
	// SolvedSavings is the savings achieved by the last solve (on its
	// problem); Drift is SolvedSavings minus the live placement's current
	// savings, clamped at zero — the cheap re-priced bound on how much the
	// placement decayed since the solver last ran.
	SolvedSavings  float64 `json:"solved_savings_percent"`
	Drift          float64 `json:"drift"`
	DriftThreshold float64 `json:"drift_threshold"`
	Replicas       int     `json:"replicas"`
	SolvesRun      int64   `json:"solves_run"`
	// SolverWork is the cumulative dominant-operation count across every
	// solve this controller ran (valuations, benefit evaluations, ...),
	// the cost axis the scenario benchmarks compare methods on.
	SolverWork    int64 `json:"solver_work"`
	DeltasApplied int64 `json:"deltas_applied"`
	CarriedDrops  int64 `json:"carried_drops"`
	Evictions     int64 `json:"evictions"`
	// Subscribers is the number of live epoch subscriptions; JournalLen how
	// many epochs the bounded journal currently holds for replay.
	Subscribers    int    `json:"subscribers"`
	JournalLen     int    `json:"journal_len"`
	LastSolveError string `json:"last_solve_error,omitempty"`
	// RowCache reports the lazy distance oracle's row-cache counters when the
	// instance runs on one (nil for dense matrices and cacheless oracles).
	RowCache *distoracle.CacheStats `json:"row_cache,omitempty"`
}

// Controller owns the mutable workload state and the published Epoch.
type Controller struct {
	cfg   Config
	epoch atomic.Pointer[Epoch]

	// mu guards the mutable state and the bookkeeping below — including the
	// journal and subscriber set. The routing path never takes it; delta
	// batches, epoch publication, subscription churn and metrics do.
	mu            sync.Mutex
	st            *state
	journal       journal
	subs          map[uint64]*Subscription
	nextSubID     uint64
	draining      bool
	solvedSavings float64
	drift         float64
	lastSolveAt   time.Time
	solvesRun     int64
	solverWork    int64
	deltasApplied int64
	carriedDrops  int64
	evictions     int64
	lastSolveErr  string
	lastPayments  []int64

	// solveMu serializes solver runs without blocking deltas or routes.
	solveMu sync.Mutex

	kick   chan struct{}
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a controller over an initial workload and capacities. The
// initial placement is primary-only; call SolveNow (or RestorePlacement)
// to install a better one.
func New(cost replication.CostFn, w *workload.Workload, capacity []int64, cfg Config) (*Controller, error) {
	st, err := newState(cost, w, capacity)
	if err != nil {
		return nil, err
	}
	return newController(st, cfg)
}

// newController finishes construction over an already-built state — shared
// by New (initial workload) and NewFromState (wire snapshot).
func newController(st *state, cfg Config) (*Controller, error) {
	if cfg.Method == "" {
		cfg.Method = "agt-ram"
	}
	if _, ok := solver.Lookup(cfg.Method); !ok {
		return nil, fmt.Errorf("online: unknown method %q (have %v)", cfg.Method, solver.Names())
	}
	if cfg.Journal <= 0 {
		cfg.Journal = DefaultJournal
	}
	p, err := st.materialize()
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, st: st, kick: make(chan struct{}, 1)}
	c.journal.max = cfg.Journal
	c.publishLocked(nil, &Epoch{Problem: p, Schema: p.NewSchema(), Version: 1, Cause: CauseInit})
	return c, nil
}

// Start launches the background solve loop. Without Start, drift-triggered
// solves queue a kick that is consumed on the next Start; SolveNow remains
// available either way. Close stops the loop.
func (c *Controller) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	c.cancel = cancel
	c.wg.Add(1)
	go c.loop(ctx)
}

// Close stops the background loop and waits for it to exit, then drains any
// remaining epoch subscribers. The controller keeps serving routes and
// deltas after Close; only automatic solves and the epoch stream stop.
func (c *Controller) Close() {
	if c.cancel != nil {
		c.cancel()
	}
	c.wg.Wait()
	c.DrainSubscribers()
}

func (c *Controller) loop(ctx context.Context) {
	defer c.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.kick:
		}
		c.mu.Lock()
		wait := c.cfg.SolveDebounce - time.Since(c.lastSolveAt)
		c.mu.Unlock()
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		if err := c.SolveNow(ctx); err != nil && ctx.Err() != nil {
			return
		}
	}
}

// kickSolve schedules a background solve; a kick already pending is enough.
func (c *Controller) kickSolve() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Current returns the live Epoch. Everything reachable from it is
// immutable; callers may read it without synchronization.
func (c *Controller) Current() *Epoch { return c.epoch.Load() }

// Route answers "which server does server i read object k from" against the
// live placement, using the canonical replication.Nearest rule (lowest cost,
// ties to the lowest server id) — the same pure function the client-side
// routing library evaluates, so a synced routing.Client answers
// bit-identically. It is lock-free and never blocks on deltas or solves.
func (c *Controller) Route(server int, object int32) (int32, error) {
	return c.epoch.Load().Route(server, object)
}

// Placement reports the live placement.
func (c *Controller) Placement() replication.PlacementReport {
	return c.epoch.Load().Schema.Report()
}

// ApplyDeltas applies a batch atomically: every delta validates and applies
// on a clone of the state, or the whole batch is rejected and the live state
// is untouched. On success the new instance is materialized, the live
// placement carried over, and the next epoch published to the journal and
// all subscribers.
func (c *Controller) ApplyDeltas(ds []Delta) (Applied, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	next := c.st.clone()
	var leaves int64
	for i, d := range ds {
		if err := next.apply(d); err != nil {
			return Applied{}, fmt.Errorf("delta %d: %w", i, err)
		}
		if d.Kind == KindServerLeave {
			leaves++
		}
	}
	p, err := next.materialize()
	if err != nil {
		return Applied{}, err
	}
	// Membership changed: drop the departed/arrived server's cached
	// distance rows (lazy oracles recompute them on next touch) instead of
	// rebuilding the whole oracle. Dense matrices don't implement the
	// capability and skip this.
	if inv, ok := next.cost.(replication.RowInvalidator); ok {
		for _, d := range ds {
			if d.Kind == KindServerJoin || d.Kind == KindServerLeave {
				inv.InvalidateRow(d.Server)
			}
		}
	}
	cur := c.epoch.Load()
	carried, dropped := p.CarryOver(cur.Schema.Matrix())
	c.st = next
	e := &Epoch{
		Problem: p, Schema: carried, Version: cur.Version + 1,
		Cause: CauseDeltas, Deltas: append([]Delta(nil), ds...),
	}
	c.publishLocked(cur, e)

	c.deltasApplied += int64(len(ds))
	c.carriedDrops += int64(dropped)
	c.evictions += leaves
	c.drift = clampDrift(c.solvedSavings - carried.Savings())
	scheduled := c.cfg.DriftThreshold > 0 && c.drift > c.cfg.DriftThreshold
	if scheduled {
		c.kickSolve()
	}
	return Applied{
		Applied: len(ds), Dropped: dropped, Drift: c.drift,
		Version: e.Version, SolveScheduled: scheduled,
	}, nil
}

// SolveNow runs one solve through the registry on a snapshot of the live
// instance and publishes the result. Deltas and routes proceed during the
// solve; if a delta batch publishes an epoch mid-solve, the solved placement
// is carried over onto the newer instance instead of clobbering it.
func (c *Controller) SolveNow(ctx context.Context) error {
	c.solveMu.Lock()
	defer c.solveMu.Unlock()

	base := c.epoch.Load()
	snap := base.Problem.Snapshot()
	opts := solver.Options{
		Workers:       c.cfg.Workers,
		Seed:          c.cfg.Seed,
		Engine:        c.cfg.Engine,
		RoundTimeout:  c.cfg.RoundTimeout,
		Faults:        c.cfg.Faults,
		GlauberSweeps: c.cfg.GlauberSweeps,
	}
	if c.cfg.WarmStart {
		opts.Warm = base.Schema.Matrix()
	}
	s, _ := solver.Lookup(c.cfg.Method)
	out, err := s.Solve(ctx, snap, opts)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastSolveAt = time.Now()
	if err != nil {
		c.lastSolveErr = err.Error()
		return err
	}
	c.lastSolveErr = ""
	c.solvesRun++
	c.solverWork += out.Work
	c.solvedSavings = out.Schema.Savings()
	c.evictions += int64(len(out.Evictions))
	c.lastPayments = append([]int64(nil), out.Payments...)

	cur := c.epoch.Load()
	if cur.Version == base.Version {
		// No deltas landed mid-solve: install the solved placement. The
		// snapshot becomes the served instance; it is value-identical to
		// cur.Problem by construction.
		c.publishLocked(cur, &Epoch{Problem: snap, Schema: out.Schema, Version: cur.Version + 1, Cause: CauseSolve})
		c.drift = 0
		return nil
	}
	// Deltas landed while we solved: carry the solved placement onto the
	// newest instance and re-measure drift against it.
	carried, dropped := cur.Problem.CarryOver(out.Schema.Matrix())
	c.carriedDrops += int64(dropped)
	c.publishLocked(cur, &Epoch{Problem: cur.Problem, Schema: carried, Version: cur.Version + 1, Cause: CauseSolve})
	c.drift = clampDrift(c.solvedSavings - carried.Savings())
	if c.cfg.DriftThreshold > 0 && c.drift > c.cfg.DriftThreshold {
		c.kickSolve()
	}
	return nil
}

// RestorePlacement installs a previously persisted placement (a snapshot
// written by the daemon on shutdown) onto the live instance. The report
// must match the instance shape and primaries; see replication.Restore.
func (c *Controller) RestorePlacement(rep replication.PlacementReport) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.epoch.Load()
	s, err := cur.Problem.Restore(rep)
	if err != nil {
		return err
	}
	c.publishLocked(cur, &Epoch{Problem: cur.Problem, Schema: s, Version: cur.Version + 1, Cause: CauseRestore})
	c.solvedSavings = s.Savings()
	c.drift = 0
	return nil
}

// LastSolvePayments returns the per-server mechanism payments of the most
// recent successful solve (nil before the first solve, or when the method
// reports none). The cluster's differential test compares these across the
// single daemon and a 1-shard cluster; the returned slice is a copy.
func (c *Controller) LastSolvePayments() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastPayments == nil {
		return nil
	}
	return append([]int64(nil), c.lastPayments...)
}

// Snapshot of the controller's counters and the live placement's economics.
func (c *Controller) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.epoch.Load()
	active := 0
	for _, a := range c.st.active {
		if a {
			active++
		}
	}
	retired := 0
	for _, r := range c.st.retired {
		if r {
			retired++
		}
	}
	m := Metrics{
		Version:        v.Version,
		Servers:        v.Problem.M,
		ActiveServers:  active,
		Objects:        v.Problem.N,
		Retired:        retired,
		OTC:            v.Schema.TotalCost(),
		BaseOTC:        v.Schema.BaseCost(),
		Savings:        v.Schema.Savings(),
		SolvedSavings:  c.solvedSavings,
		Drift:          c.drift,
		DriftThreshold: c.cfg.DriftThreshold,
		Replicas:       v.Schema.Placed(),
		SolvesRun:      c.solvesRun,
		SolverWork:     c.solverWork,
		DeltasApplied:  c.deltasApplied,
		CarriedDrops:   c.carriedDrops,
		Evictions:      c.evictions,
		Subscribers:    len(c.subs),
		JournalLen:     len(c.journal.ring),
		LastSolveError: c.lastSolveErr,
	}
	if cs, ok := c.st.cost.(interface{ Stats() distoracle.CacheStats }); ok {
		stats := cs.Stats()
		m.RowCache = &stats
	}
	return m
}

func clampDrift(d float64) float64 {
	if d < 0 {
		return 0
	}
	return d
}
