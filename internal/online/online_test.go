package online

import (
	"context"
	"reflect"
	"testing"
	"time"

	_ "repro/internal/agtram" // register the agt-ram solver
	"repro/internal/replication"
	"repro/internal/solver"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/workload"
)

// demandDiff computes the per-(server,object) demand deltas that turn a
// into b. Both workloads must share shape, catalogue and primaries.
func demandDiff(a, b *workload.Workload) []Delta {
	type cell struct{ reads, writes int64 }
	var out []Delta
	for i := 0; i < a.M; i++ {
		have := map[int32]cell{}
		for _, d := range a.PerServer[i] {
			have[d.Object] = cell{d.Reads, d.Writes}
		}
		want := map[int32]cell{}
		for _, d := range b.PerServer[i] {
			want[d.Object] = cell{d.Reads, d.Writes}
		}
		for k := int32(0); int(k) < a.N; k++ {
			h, w := have[k], want[k]
			if h == w {
				continue
			}
			out = append(out, Delta{
				Kind: KindDemand, Server: i, Object: k,
				Reads: w.reads - h.reads, Writes: w.writes - h.writes,
			})
		}
	}
	return out
}

// TestDifferentialDeltasVsMaterialized is the delta-semantics property test:
// feeding the controller the demand diff and re-solving must land on exactly
// the placement a direct solve of the materialized final problem produces.
// Cold solves are deterministic in the instance, so equality is exact.
func TestDifferentialDeltasVsMaterialized(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		cfg := testutil.Small(seed)
		p1 := testutil.MustBuild(cfg)
		w2, err := workload.Synthetic(workload.SyntheticConfig{
			Servers: cfg.Servers, Objects: cfg.Objects, Requests: cfg.Requests,
			RWRatio: cfg.RWRatio, Seed: cfg.Seed, DemandSeed: cfg.Seed + 1000,
		})
		if err != nil {
			t.Fatal(err)
		}

		ctrl, err := New(p1.Cost, p1.Work, p1.Capacity, Config{})
		if err != nil {
			t.Fatal(err)
		}
		diff := demandDiff(p1.Work, w2)
		if len(diff) == 0 {
			t.Fatalf("seed %d: demand diff is empty, test is vacuous", seed)
		}
		if _, err := ctrl.ApplyDeltas(diff); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.SolveNow(context.Background()); err != nil {
			t.Fatal(err)
		}

		p2, err := replication.NewProblem(p1.Cost, w2, p1.Capacity)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := solver.Lookup("agt-ram")
		direct, err := s.Solve(context.Background(), p2, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}

		got := ctrl.Current().Schema
		if got.TotalCost() != direct.Schema.TotalCost() {
			t.Fatalf("seed %d: deltas-then-solve OTC %d != direct solve OTC %d",
				seed, got.TotalCost(), direct.Schema.TotalCost())
		}
		if !reflect.DeepEqual(got.Matrix(), direct.Schema.Matrix()) {
			t.Fatalf("seed %d: placements diverge between delta path and materialized path", seed)
		}
		if err := got.ValidateInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestBatchAtomicity: a batch with one invalid delta changes nothing.
func TestBatchAtomicity(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(2))
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := ctrl.Metrics()
	_, err = ctrl.ApplyDeltas([]Delta{
		{Kind: KindDemand, Server: 0, Object: 0, Reads: 100},
		{Kind: KindDemand, Server: p.M + 5, Object: 0, Reads: 1}, // invalid
	})
	if err == nil {
		t.Fatal("batch with an out-of-range delta was accepted")
	}
	after := ctrl.Metrics()
	if after.Version != before.Version || after.DeltasApplied != before.DeltasApplied {
		t.Fatalf("rejected batch mutated state: %+v -> %+v", before, after)
	}
	if _, err := ctrl.Route(0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestObjectLifecycle: add an object, drive demand at it, solve, retire it.
func TestObjectLifecycle(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(5))
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{})
	if err != nil {
		t.Fatal(err)
	}
	newObj := int32(p.N)
	batch := []Delta{{Kind: KindAddObject, Size: 1, Primary: 0}}
	for i := 1; i < p.M; i++ {
		batch = append(batch, Delta{Kind: KindDemand, Server: i, Object: newObj, Reads: 5000})
	}
	if _, err := ctrl.ApplyDeltas(batch); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Metrics().Objects; got != p.N+1 {
		t.Fatalf("objects = %d after add, want %d", got, p.N+1)
	}
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Replicas includes the primary copy; heavy demand must add more.
	v := ctrl.Current()
	if len(v.Schema.Replicas(newObj)) <= 1 {
		t.Fatal("heavy demand at the new object produced no replicas")
	}

	// Retire it: demand is gone immediately, replicas dissolve at the next
	// re-pricing.
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindRemoveObject, Object: newObj}}); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	v = ctrl.Current()
	if got := v.Schema.Replicas(newObj); len(got) != 1 || got[0] != 0 {
		t.Fatalf("retired object holds %v after re-solve, want its primary [0] only", got)
	}
	// Its primary copy must survive: routing to it still answers.
	nn, err := ctrl.Route(3, newObj)
	if err != nil {
		t.Fatal(err)
	}
	if nn != 0 {
		t.Fatalf("retired object routes to %d, want its primary 0", nn)
	}
	// New demand at a retired object is invalid.
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindDemand, Server: 1, Object: newObj, Reads: 1}}); err == nil {
		t.Fatal("demand delta at a retired object was accepted")
	}
}

// TestServerLeaveJoin: departure drops the server's surplus replicas and
// demand; rejoining restores capacity. Growth past the cost oracle fails.
func TestServerLeaveJoin(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(6))
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Find a server holding surplus replicas.
	v := ctrl.Current()
	victim := -1
	for i := 0; i < p.M && victim < 0; i++ {
		for k := int32(0); int(k) < p.N; k++ {
			if int32(i) != p.Work.Primary[k] && v.Schema.HasReplica(k, i) {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		t.Fatal("no server holds a surplus replica after solving")
	}

	res, err := ctrl.ApplyDeltas([]Delta{{Kind: KindServerLeave, Server: victim}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("departure of a replica-holding server dropped nothing")
	}
	m := ctrl.Metrics()
	if m.ActiveServers != p.M-1 || m.Evictions == 0 {
		t.Fatalf("metrics after leave: active=%d evictions=%d", m.ActiveServers, m.Evictions)
	}
	// The departed server keeps its primaries and still routes.
	if _, err := ctrl.Route(victim, 0); err != nil {
		t.Fatal(err)
	}
	// Demand at a departed server is rejected; double-leave too.
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindDemand, Server: victim, Object: 0, Reads: 1}}); err == nil {
		t.Fatal("demand delta at a departed server was accepted")
	}
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindServerLeave, Server: victim}}); err == nil {
		t.Fatal("double departure was accepted")
	}

	// Rejoin with fresh capacity.
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindServerJoin, Server: victim, Capacity: p.Capacity[victim]}}); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Metrics().ActiveServers; got != p.M {
		t.Fatalf("active servers after rejoin = %d, want %d", got, p.M)
	}
	// Growing beyond the cost oracle's coverage must fail (the test
	// topology covers exactly M servers).
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindServerJoin, Server: p.M, Capacity: 100}}); err == nil {
		t.Fatal("growth past the cost oracle was accepted")
	}
}

// TestDriftAutoSolve: a demand shift past the threshold triggers a
// background re-solve without any explicit SolveNow call.
func TestDriftAutoSolve(t *testing.T) {
	cfg := testutil.Small(8)
	p := testutil.MustBuild(cfg)
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{
		DriftThreshold: 0.01,
		SolveDebounce:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl.Start(ctx)
	defer ctrl.Close()

	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	solved := ctrl.Metrics().SolvesRun

	// Shift demand until the drift trips the threshold.
	scheduled := false
	for ds := int64(1); ds <= 5 && !scheduled; ds++ {
		w2, err := workload.Synthetic(workload.SyntheticConfig{
			Servers: cfg.Servers, Objects: cfg.Objects, Requests: cfg.Requests,
			RWRatio: cfg.RWRatio, Seed: cfg.Seed, DemandSeed: cfg.Seed + 100*ds,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ctrl.ApplyDeltas(demandDiff(ctrl.Current().Problem.Work, w2))
		if err != nil {
			t.Fatal(err)
		}
		scheduled = res.SolveScheduled
	}
	if !scheduled {
		t.Fatal("no demand shift produced drift above 0.01 percentage points")
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := ctrl.Metrics(); m.SolvesRun > solved && m.Drift == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("background solve never ran: %+v", ctrl.Metrics())
}

// TestRestorePlacement round-trips a placement through the report form the
// daemon persists on shutdown.
func TestRestorePlacement(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(10))
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SolveNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := ctrl.Placement()

	again, err := New(p.Cost, p.Work, p.Capacity, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := again.RestorePlacement(rep); err != nil {
		t.Fatal(err)
	}
	if got := again.Current().Schema.TotalCost(); got != rep.OTC {
		t.Fatalf("restored OTC %d != persisted %d", got, rep.OTC)
	}
	if m := again.Metrics(); m.Drift != 0 || m.SolvedSavings != rep.Savings {
		t.Fatalf("restore did not reset the drift baseline: %+v", m)
	}
}

// TestDeltasFromEvents covers the trace-to-delta aggregation, including the
// nil-ClientMap convention (client c -> server c mod M).
func TestDeltasFromEvents(t *testing.T) {
	events := []trace.Event{
		{Client: 0, Object: 3},
		{Client: 0, Object: 3, Write: true},
		{Client: 4, Object: 3}, // 4 mod 4 -> server 0
		{Client: 1, Object: 7},
	}
	ds, err := DeltasFromEvents(events, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Delta{
		{Kind: KindDemand, Server: 0, Object: 3, Reads: 2, Writes: 1},
		{Kind: KindDemand, Server: 1, Object: 7, Reads: 1},
	}
	if !reflect.DeepEqual(ds, want) {
		t.Fatalf("DeltasFromEvents = %+v, want %+v", ds, want)
	}
	cm := workload.ClientMap{0: 2, 1: 2}
	ds, err = DeltasFromEvents(events[:2], cm, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Server != 2 {
		t.Fatalf("client map ignored: %+v", ds)
	}
	if _, err := DeltasFromEvents(events, cm, 4); err == nil {
		t.Fatal("event referencing a client outside the map was accepted")
	}
}

// recordingOracle wraps a CostFn and records row invalidations, standing in
// for the lazy caching oracles in internal/distoracle.
type recordingOracle struct {
	replication.CostFn
	invalidated []int
}

func (r *recordingOracle) InvalidateRow(i int) { r.invalidated = append(r.invalidated, i) }

// TestMembershipDeltasInvalidateRows: server join/leave must invalidate the
// affected cached distance rows through the replication.RowInvalidator
// seam, and only membership deltas may do so — demand deltas leave the
// cache alone.
func TestMembershipDeltasInvalidateRows(t *testing.T) {
	p := testutil.MustBuild(testutil.Small(6))
	rec := &recordingOracle{CostFn: p.Cost}
	ctrl, err := New(rec, p.Work, p.Capacity, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindDemand, Server: 1, Object: 0, Reads: 5}}); err != nil {
		t.Fatal(err)
	}
	if len(rec.invalidated) != 0 {
		t.Fatalf("demand delta invalidated rows %v", rec.invalidated)
	}
	victim := 2
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindServerLeave, Server: victim}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindServerJoin, Server: victim, Capacity: p.Capacity[victim]}}); err != nil {
		t.Fatal(err)
	}
	if want := []int{victim, victim}; !reflect.DeepEqual(rec.invalidated, want) {
		t.Fatalf("invalidations = %v, want %v", rec.invalidated, want)
	}
	// A rejected batch must not invalidate anything.
	before := len(rec.invalidated)
	if _, err := ctrl.ApplyDeltas([]Delta{{Kind: KindServerLeave, Server: victim}, {Kind: KindServerLeave, Server: victim}}); err == nil {
		t.Fatal("double departure in one batch was accepted")
	}
	if len(rec.invalidated) != before {
		t.Fatalf("rejected batch invalidated rows: %v", rec.invalidated[before:])
	}
}
