package online

import "errors"

// DefaultJournal is the epoch-journal depth when Config.Journal is zero:
// how many recent Updates the controller keeps for replay. Subscribers whose
// version fell further behind get a full snapshot instead.
const DefaultJournal = 64

// DefaultSubscriberBuffer is the per-subscription channel capacity when the
// subscriber does not choose one. A subscriber that falls more than a full
// buffer behind is dropped with ErrSlowSubscriber rather than ever blocking
// the publish path.
const DefaultSubscriberBuffer = 64

// ErrSlowSubscriber closes a subscription whose buffer overflowed: the
// consumer was slower than the epoch stream. Resubscribing from the last
// applied version resumes via journal replay or a snapshot.
var ErrSlowSubscriber = errors.New("online: subscriber fell behind the epoch stream and was dropped")

// Subscription is one live epoch stream. Read updates from C; the channel
// closes when the subscription ends — Unsubscribe, a drained controller
// (after a terminal Update), or buffer overflow (Err reports
// ErrSlowSubscriber). Err is valid only after C closes.
type Subscription struct {
	// C delivers the epoch stream: first any catch-up (journal replay from
	// the requested version, or one full snapshot), then live updates.
	C <-chan *Update

	ch  chan *Update
	id  uint64
	err error
}

// Err reports why the subscription's channel closed: nil for a graceful end
// (Unsubscribe or drain), ErrSlowSubscriber when the consumer lagged.
func (s *Subscription) Err() error { return s.err }

// journal is the controller's bounded epoch history: a ring of the most
// recent Updates with contiguous versions. It is guarded by the controller's
// mutex like the rest of the publication state.
type journal struct {
	max  int
	ring []*Update // chronological; ring[0] is oldest
}

func (j *journal) append(u *Update) {
	if len(j.ring) == j.max {
		copy(j.ring, j.ring[1:])
		j.ring[len(j.ring)-1] = u
		return
	}
	j.ring = append(j.ring, u)
}

// since returns the contiguous updates with Version > v, or ok=false when
// the journal no longer reaches back to v+1 (the subscriber must snapshot).
func (j *journal) since(v uint64) ([]*Update, bool) {
	if len(j.ring) == 0 {
		return nil, false
	}
	oldest := j.ring[0].Version
	if v+1 < oldest {
		return nil, false
	}
	// Versions are contiguous, so the slice offset is arithmetic.
	start := int(v + 1 - oldest)
	if start >= len(j.ring) {
		return nil, true // already current
	}
	return j.ring[start:], true
}

// Subscribe opens an epoch stream resuming after version since: a client
// that has applied epoch V passes since=V and receives V+1, V+2, ... — from
// the journal when it still covers that range, otherwise a single full
// snapshot of the current epoch followed by live updates. since=0 means "no
// state": the journal replays from the beginning if it still can (the first
// journaled update is itself a snapshot), else one snapshot.
//
// buf sizes the subscription's channel (DefaultSubscriberBuffer when <= 0);
// catch-up updates never count against it. Publishing never blocks on a
// subscriber: a full channel drops the subscription with ErrSlowSubscriber.
//
// Subscribing to a draining controller yields an immediately-terminal
// stream: one Update with Terminal set, then close, Err() == nil.
func (c *Controller) Subscribe(since uint64, buf int) *Subscription {
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	cur := c.epoch.Load()
	if c.draining {
		sub := &Subscription{ch: make(chan *Update, 1)}
		sub.C = sub.ch
		sub.ch <- terminalUpdate(cur)
		close(sub.ch)
		return sub
	}

	var backlog []*Update
	switch {
	case since == cur.Version:
		// Current: live updates only.
	case since > cur.Version:
		// A version from another life (restart, different controller):
		// reset the subscriber with a snapshot.
		backlog = []*Update{cur.SnapshotUpdate()}
	default:
		if replay, ok := c.journal.since(since); ok {
			backlog = replay
		} else {
			backlog = []*Update{cur.SnapshotUpdate()}
		}
	}

	sub := &Subscription{ch: make(chan *Update, len(backlog)+buf), id: c.nextSubID}
	sub.C = sub.ch
	c.nextSubID++
	for _, u := range backlog {
		sub.ch <- u
	}
	if c.subs == nil {
		c.subs = make(map[uint64]*Subscription)
	}
	c.subs[sub.id] = sub
	return sub
}

// Unsubscribe ends a subscription and closes its channel. Safe to call on a
// subscription the controller already dropped (lag or drain).
func (c *Controller) Unsubscribe(sub *Subscription) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.subs[sub.id]; !ok {
		return
	}
	delete(c.subs, sub.id)
	close(sub.ch)
}

// DrainSubscribers ends every subscription with a terminal Update and
// refuses new ones: the daemon's graceful-shutdown hook, called before the
// HTTP server's drain window so long-poll and SSE handlers return instead of
// being abandoned mid-stream. Deltas, routes and solves keep working; only
// the epoch stream ends.
func (c *Controller) DrainSubscribers() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return
	}
	c.draining = true
	term := terminalUpdate(c.epoch.Load())
	for id, sub := range c.subs {
		select {
		case sub.ch <- term:
		default: // full buffer: the close alone signals the end
		}
		delete(c.subs, id)
		close(sub.ch)
	}
}

func terminalUpdate(cur *Epoch) *Update {
	return &Update{Version: cur.Version, Cause: CauseShutdown, Terminal: true}
}

// publishLocked swaps in the next epoch, journals its update and fans it out
// to subscribers. Callers hold c.mu; prev must be the epoch next was built
// from (its version is exactly next.Version-1).
func (c *Controller) publishLocked(prev, next *Epoch) {
	u := &Update{Version: next.Version, Cause: next.Cause, Deltas: next.Deltas}
	if prev == nil {
		u.Snapshot = snapshotOf(next)
	} else {
		u.Diff = diffEpochs(prev, next)
	}
	c.epoch.Store(next)
	c.journal.append(u)
	for id, sub := range c.subs {
		select {
		case sub.ch <- u:
		default:
			// Never block the publish path: drop the laggard. It learns from
			// the closed channel + Err and resubscribes from its version.
			delete(c.subs, id)
			sub.err = ErrSlowSubscriber
			close(sub.ch)
		}
	}
}
