package online

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/testutil"
)

// newJournalController builds a controller over a small instance with the
// given journal depth.
func newJournalController(t *testing.T, seed int64, journal int) *Controller {
	t.Helper()
	p := testutil.MustBuild(testutil.Small(seed))
	ctrl, err := New(p.Cost, p.Work, p.Capacity, Config{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// collect drains a subscription's buffered updates without blocking.
func collect(sub *Subscription) []*Update {
	var out []*Update
	for {
		select {
		case u, ok := <-sub.C:
			if !ok {
				return out
			}
			out = append(out, u)
		default:
			return out
		}
	}
}

// demandDelta is a one-cell demand bump for driving epoch publishes.
func demandDelta(server int, object int32, reads int64) []Delta {
	return []Delta{{Kind: KindDemand, Server: server, Object: object, Reads: reads}}
}

// TestSubscribeReplaysJournal checks the resume contract: a subscriber at
// version V receives exactly V+1, V+2, ... as diffs when the journal still
// covers them, and every diff chains From = Version-1.
func TestSubscribeReplaysJournal(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newJournalController(t, 31, 0)
	defer ctrl.Close()
	for i := 0; i < 5; i++ {
		if _, err := ctrl.ApplyDeltas(demandDelta(i%3, int32(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	cur := ctrl.Current().Version // 6: init + 5 delta epochs

	sub := ctrl.Subscribe(2, 0)
	defer ctrl.Unsubscribe(sub)
	got := collect(sub)
	if len(got) != int(cur-2) {
		t.Fatalf("replay from 2 delivered %d updates, want %d", len(got), cur-2)
	}
	for i, u := range got {
		if want := uint64(3 + i); u.Version != want {
			t.Fatalf("update %d has version %d, want %d", i, u.Version, want)
		}
		if u.Snapshot != nil || u.Diff == nil {
			t.Fatalf("journal replay update %d is not a diff: %+v", i, u)
		}
		if u.Diff.From != u.Version-1 {
			t.Fatalf("diff %d chains from %d, want %d", u.Version, u.Diff.From, u.Version-1)
		}
		if u.Cause != CauseDeltas || len(u.Deltas) == 0 {
			t.Fatalf("delta epoch %d lost its provenance: cause %q, %d deltas", u.Version, u.Cause, len(u.Deltas))
		}
	}
}

// TestSubscribeFallsBackToSnapshot checks the journal bound: a subscriber
// older than the ring gets one full snapshot of the current epoch, and the
// snapshot validates and matches the live placement.
func TestSubscribeFallsBackToSnapshot(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newJournalController(t, 32, 4)
	defer ctrl.Close()
	for i := 0; i < 10; i++ {
		if _, err := ctrl.ApplyDeltas(demandDelta(i%3, int32(i%5), 50)); err != nil {
			t.Fatal(err)
		}
	}
	cur := ctrl.Current()

	// Version 1 fell off a 4-deep journal long ago.
	sub := ctrl.Subscribe(1, 0)
	defer ctrl.Unsubscribe(sub)
	got := collect(sub)
	if len(got) != 1 || got[0].Snapshot == nil {
		t.Fatalf("stale subscriber got %d updates (first snapshot=%v), want one snapshot", len(got), got[0].Snapshot != nil)
	}
	if got[0].Version != cur.Version {
		t.Fatalf("snapshot is of version %d, live is %d", got[0].Version, cur.Version)
	}
	ps := got[0].Snapshot
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < cur.Problem.N; k++ {
		want := cur.Schema.Replicas(int32(k))
		gotR := ps.ReplicaSet(k)
		if len(want) != len(gotR) {
			t.Fatalf("object %d: snapshot has %d replicas, schema %d", k, len(gotR), len(want))
		}
		for i := range want {
			if want[i] != gotR[i] {
				t.Fatalf("object %d replica %d: snapshot %d != schema %d", k, i, gotR[i], want[i])
			}
		}
	}

	// A subscriber from the future (another controller's version) resets too.
	sub2 := ctrl.Subscribe(cur.Version+100, 0)
	defer ctrl.Unsubscribe(sub2)
	if got := collect(sub2); len(got) != 1 || got[0].Snapshot == nil {
		t.Fatalf("future subscriber got %v, want one snapshot", got)
	}

	// A current subscriber gets nothing until the next publish.
	sub3 := ctrl.Subscribe(cur.Version, 0)
	defer ctrl.Unsubscribe(sub3)
	if got := collect(sub3); len(got) != 0 {
		t.Fatalf("current subscriber got %d updates before any publish", len(got))
	}
	if _, err := ctrl.ApplyDeltas(demandDelta(0, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if got := collect(sub3); len(got) != 1 || got[0].Version != cur.Version+1 {
		t.Fatalf("live update not delivered: %v", got)
	}
}

// TestJournalRingBoundaries pins the ring's exact edge: once the journal has
// wrapped, a subscriber at version oldest-1 still replays the entire ring
// (the oldest retained update is exactly its next version), while oldest-2 —
// one version further back — must fall back to a snapshot.
func TestJournalRingBoundaries(t *testing.T) {
	testutil.LeakCheck(t)
	const depth = 4
	ctrl := newJournalController(t, 36, depth)
	defer ctrl.Close()
	for i := 0; i < 10; i++ {
		if _, err := ctrl.ApplyDeltas(demandDelta(i%3, int32(i%7), 40)); err != nil {
			t.Fatal(err)
		}
	}
	cur := ctrl.Current().Version // 11: init + 10 deltas, ring holds 8..11
	oldest := cur - depth + 1

	// since = oldest-1: the full wrapped ring, every entry a chained diff.
	sub := ctrl.Subscribe(oldest-1, 0)
	defer ctrl.Unsubscribe(sub)
	got := collect(sub)
	if len(got) != depth {
		t.Fatalf("since=oldest-1 replayed %d updates, want the full ring of %d", len(got), depth)
	}
	for i, u := range got {
		if want := oldest + uint64(i); u.Version != want {
			t.Fatalf("ring entry %d has version %d, want %d", i, u.Version, want)
		}
		if u.Diff == nil || u.Diff.From != u.Version-1 {
			t.Fatalf("ring entry %d is not a chained diff: %+v", i, u)
		}
	}

	// since = oldest-2: the ring no longer reaches back; one snapshot.
	sub2 := ctrl.Subscribe(oldest-2, 0)
	defer ctrl.Unsubscribe(sub2)
	if got := collect(sub2); len(got) != 1 || got[0].Snapshot == nil || got[0].Version != cur {
		t.Fatalf("since=oldest-2 got %d updates, want one snapshot of %d", len(got), cur)
	}

	// since = cur-1: the tail alone.
	sub3 := ctrl.Subscribe(cur-1, 0)
	defer ctrl.Unsubscribe(sub3)
	if got := collect(sub3); len(got) != 1 || got[0].Version != cur || got[0].Diff == nil {
		t.Fatalf("since=cur-1 got %v, want the single tail diff", got)
	}
}

// TestSubscribeBacklogGapFreeProperty is the resume contract as a property:
// for every journal depth, history length and since value, the catch-up
// backlog is strictly increasing, diffs chain without gaps, the first diff
// resumes exactly at since+1, and any snapshot stands alone at the current
// version. No (depth, history, since) combination may yield a backlog a
// client cannot apply.
func TestSubscribeBacklogGapFreeProperty(t *testing.T) {
	testutil.LeakCheck(t)
	for _, depth := range []int{2, 4, 7, DefaultJournal} {
		for _, publishes := range []int{0, 1, 3, 9, 70} {
			ctrl := newJournalController(t, 37, depth)
			for i := 0; i < publishes; i++ {
				if _, err := ctrl.ApplyDeltas(demandDelta(i%5, int32(i%11), 15)); err != nil {
					t.Fatal(err)
				}
			}
			cur := ctrl.Current().Version
			for since := uint64(0); since <= cur+2; since++ {
				sub := ctrl.Subscribe(since, 0)
				got := collect(sub)
				ctrl.Unsubscribe(sub)
				last := since
				for i, u := range got {
					switch {
					case u.Snapshot != nil:
						// A snapshot only ever leads the backlog: either the
						// journaled origin (replayed from since=0) or a reset
						// of the current epoch; diffs chain forward from it.
						if i != 0 {
							t.Fatalf("depth=%d publishes=%d since=%d: snapshot mid-backlog at %d: %+v",
								depth, publishes, since, i, got)
						}
						if u.Version != cur && u.Version != since+1 {
							t.Fatalf("depth=%d publishes=%d since=%d: leading snapshot at %d, want current %d or resume %d",
								depth, publishes, since, u.Version, cur, since+1)
						}
						last = u.Version
					case u.Diff != nil:
						if u.Version != last+1 || u.Diff.From != last {
							t.Fatalf("depth=%d publishes=%d since=%d: entry %d breaks the chain (have %d, diff %d->%d)",
								depth, publishes, since, i, last, u.Diff.From, u.Version)
						}
						last = u.Version
					default:
						t.Fatalf("depth=%d publishes=%d since=%d: update %d is neither diff nor snapshot", depth, publishes, since, i)
					}
				}
				if since <= cur && last != cur {
					t.Fatalf("depth=%d publishes=%d since=%d: backlog ends at %d, not current %d",
						depth, publishes, since, last, cur)
				}
			}
			ctrl.Close()
		}
	}
}

// TestSlowSubscriberDropped checks the no-blocking guarantee: a subscriber
// that never reads is dropped with ErrSlowSubscriber once its buffer fills,
// and publishing never stalls.
func TestSlowSubscriberDropped(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newJournalController(t, 33, 0)
	defer ctrl.Close()
	sub := ctrl.Subscribe(ctrl.Current().Version, 1)
	for i := 0; i < 4; i++ {
		if _, err := ctrl.ApplyDeltas(demandDelta(0, int32(i), 25)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(sub)
	if len(got) != 1 {
		t.Fatalf("buf-1 subscriber received %d updates, want the 1 that fit", len(got))
	}
	if sub.Err() != ErrSlowSubscriber {
		t.Fatalf("Err() = %v, want ErrSlowSubscriber", sub.Err())
	}
	if m := ctrl.Metrics(); m.Subscribers != 0 {
		t.Fatalf("dropped subscriber still counted: %d", m.Subscribers)
	}
	// Unsubscribe after the drop must be a no-op, not a double close.
	ctrl.Unsubscribe(sub)
}

// TestDrainSubscribers checks graceful shutdown: every live stream ends with
// a terminal update and a closed channel, Err() == nil, and subscribing to a
// drained controller yields an immediately-terminal stream.
func TestDrainSubscribers(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newJournalController(t, 34, 0)
	sub := ctrl.Subscribe(ctrl.Current().Version, 0)
	ctrl.DrainSubscribers()

	var last *Update
	n := 0
	for u := range sub.C {
		last = u
		n++
	}
	if n != 1 || last == nil || !last.Terminal || last.Cause != CauseShutdown {
		t.Fatalf("drained stream delivered %d updates, last %+v; want one terminal", n, last)
	}
	if sub.Err() != nil {
		t.Fatalf("drained subscription Err() = %v, want nil", sub.Err())
	}

	late := ctrl.Subscribe(0, 0)
	got := collect(late)
	if len(got) != 1 || !got[0].Terminal {
		t.Fatalf("post-drain subscribe got %v, want immediate terminal", got)
	}
	ctrl.Close() // double-drain must be safe
}

// TestConcurrentSubscribersGapless is the journal's race test: subscribers
// join at random points while delta batches and solves publish concurrently;
// every subscriber must observe a strictly increasing, gapless version
// sequence (each update is prev+1, or a snapshot that legitimately jumps).
// Run under -race -count=2 via make loadtest.
func TestConcurrentSubscribersGapless(t *testing.T) {
	testutil.LeakCheck(t)
	ctrl := newJournalController(t, 35, 8)
	defer ctrl.Close()

	const (
		writers    = 3
		perWriter  = 20
		readers    = 6
		liveSolves = 3
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Odd readers resume from a version they pretend to have; even
			// readers start cold. Both must end up gapless.
			since := uint64(0)
			if g%2 == 1 {
				since = ctrl.Current().Version
			}
			sub := ctrl.Subscribe(since, 4)
			defer ctrl.Unsubscribe(sub)
			last := since
			synced := since != 0
			for {
				select {
				case <-stop:
					return
				case u, ok := <-sub.C:
					if !ok {
						if sub.Err() == ErrSlowSubscriber {
							// Legitimate drop under load: resubscribe from
							// where we got to, snapshot or replay decides.
							sub = ctrl.Subscribe(last, 4)
							continue
						}
						return
					}
					switch {
					case u.Terminal:
						return
					case u.Snapshot != nil:
						if synced && u.Version < last {
							errs <- errVersionRegression(last, u.Version)
							return
						}
						last, synced = u.Version, true
					case u.Diff != nil:
						if synced && u.Version != last+1 {
							errs <- errVersionRegression(last, u.Version)
							return
						}
						if u.Diff.From != u.Version-1 {
							errs <- errVersionRegression(u.Diff.From, u.Version)
							return
						}
						last, synced = u.Version, true
					}
				}
			}
		}(g)
	}

	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := ctrl.ApplyDeltas(demandDelta((g+i)%3, int32((g*7+i)%10), int64(10+i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; i < liveSolves; i++ {
			if err := ctrl.SolveNow(context.Background()); err != nil {
				errs <- err
				return
			}
		}
	}()
	writerWG.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := uint64(1 + writers*perWriter + liveSolves)
	if got := ctrl.Current().Version; got != want {
		t.Fatalf("final version %d, want %d (every publish bumps exactly once)", got, want)
	}
}

func errVersionRegression(last, got uint64) error {
	return fmt.Errorf("subscriber version sequence broke: had %d, got %d", last, got)
}
