// Package trace generates and encodes synthetic web-access traces that stand
// in for the Soccer World Cup 1998 logs the paper replays (Section 5). The
// real logs are not redistributable; the generator preserves the properties
// the replica-placement algorithms are sensitive to:
//
//   - Zipf-skewed object popularity (a few objects draw most requests),
//   - lognormal object sizes with controllable mean and variance,
//   - a heavy-tailed request count per client (top clients dominate),
//   - a configurable write (update) share pushed onto random clients,
//   - multiple "Friday" instances derived from one base configuration,
//     mirroring the paper's 13 Friday logs from May 1 to July 24, 1998.
//
// Traces can be serialized to a compact binary format and to an Apache
// common-log-style text format; both round-trip.
package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Event is one logged request.
type Event struct {
	Time   uint32 // seconds since trace start
	Client int32  // client id in [0, Clients)
	Object int32  // object id in [0, Objects)
	Size   int32  // object size in simple data units (constant per object)
	Write  bool   // true for an update (POST/PUT), false for a read (GET)
}

// Log is a complete trace plus its static object catalogue.
type Log struct {
	Objects     int32
	Clients     int32
	ObjectSizes []int32 // size per object id, len == Objects
	Events      []Event // time-ordered
}

// Config parameterizes the generator.
type Config struct {
	Objects    int     // catalogue size (paper: 25,000)
	Clients    int     // distinct clients (paper: top 500)
	Events     int     // total requests (paper: 1-2 million per Friday)
	ZipfS      float64 // popularity skew exponent (default 1.1)
	MeanSize   float64 // mean object size in data units (default 8)
	SizeStd    float64 // std-dev of object size (default 12)
	WriteRatio float64 // fraction of events that are writes (default 0.05)
	ClientSkew float64 // bounded-Pareto alpha for per-client volume (default 1.2)
	Duration   uint32  // trace duration in seconds (default 86400, one day)
	// DiurnalAmplitude in [0, 1) modulates request intensity over the day
	// with a sinusoid peaking mid-trace, as in the World Cup logs' strong
	// diurnal cycle. 0 (default) spreads events uniformly.
	DiurnalAmplitude float64
	Seed             int64
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.MeanSize == 0 {
		c.MeanSize = 8
	}
	if c.SizeStd == 0 {
		c.SizeStd = 12
	}
	if c.WriteRatio == 0 {
		c.WriteRatio = 0.05
	}
	if c.ClientSkew == 0 {
		c.ClientSkew = 1.2
	}
	if c.Duration == 0 {
		c.Duration = 86400
	}
	return c
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.Objects <= 0 || c.Clients <= 0 || c.Events <= 0 {
		return fmt.Errorf("trace: Objects, Clients and Events must be positive, got %d/%d/%d", c.Objects, c.Clients, c.Events)
	}
	if c.WriteRatio < 0 || c.WriteRatio >= 1 {
		return fmt.Errorf("trace: WriteRatio must be in [0,1), got %v", c.WriteRatio)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("trace: DiurnalAmplitude must be in [0,1), got %v", c.DiurnalAmplitude)
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("trace: ZipfS must be >= 0, got %v", c.ZipfS)
	}
	return nil
}

// Generate produces one synthetic trace.
func Generate(cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRNG(cfg.Seed)
	sizeRNG := root.Split(1)
	popRNG := root.Split(2)
	cliRNG := root.Split(3)
	evtRNG := root.Split(4)

	// Object catalogue: lognormal sizes, clamped to >= 1 data unit.
	ln, err := stats.LognormalFromMeanStd(cfg.MeanSize, cfg.SizeStd)
	if err != nil {
		return nil, err
	}
	sizes := make([]int32, cfg.Objects)
	for k := range sizes {
		s := int32(ln.Sample(sizeRNG))
		if s < 1 {
			s = 1
		}
		sizes[k] = s
	}

	// Popularity: Zipf over a random permutation of object ids, so object id
	// order carries no popularity information.
	zipf, err := stats.NewZipf(popRNG, cfg.ZipfS, uint64(cfg.Objects))
	if err != nil {
		return nil, err
	}
	rankToObject := popRNG.Perm32(cfg.Objects)

	// Per-client volume: bounded Pareto weights, then a weighted sampler.
	weights := make([]float64, cfg.Clients)
	pareto := stats.Pareto{Alpha: cfg.ClientSkew, Lo: 1, Hi: 1000}
	total := 0.0
	for i := range weights {
		weights[i] = pareto.Sample(cliRNG)
		total += weights[i]
	}
	cum := make([]float64, cfg.Clients)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	sampleClient := func() int32 {
		u := evtRNG.Float64()
		idx := sort.SearchFloat64s(cum, u)
		if idx >= cfg.Clients {
			idx = cfg.Clients - 1
		}
		return int32(idx)
	}

	clock := newArrivalClock(cfg)
	events := make([]Event, cfg.Events)
	for i := range events {
		obj := rankToObject[zipf.Sample(evtRNG)]
		events[i] = Event{
			Time:   clock.timeOf(i, cfg.Events),
			Client: sampleClient(),
			Object: obj,
			Size:   sizes[obj],
			Write:  evtRNG.Bool(cfg.WriteRatio),
		}
	}
	return &Log{
		Objects:     int32(cfg.Objects),
		Clients:     int32(cfg.Clients),
		ObjectSizes: sizes,
		Events:      events,
	}, nil
}

// Fridays generates n independent trace instances from one base config,
// mirroring the paper's 13 Friday logs: same catalogue shape, different
// request streams.
func Fridays(cfg Config, n int) ([]*Log, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: Fridays needs n > 0, got %d", n)
	}
	logs := make([]*Log, n)
	for i := range logs {
		c := cfg
		c.Seed = stats.Mix64(cfg.Seed, int64(i+1))
		log, err := Generate(c)
		if err != nil {
			return nil, err
		}
		logs[i] = log
	}
	return logs, nil
}

// Stats summarizes a trace for validation and reporting.
type Stats struct {
	Events        int
	Reads, Writes int
	WriteRatio    float64
	DistinctObjs  int
	TopObjShare   float64 // share of requests to the single hottest object
	SizeMean      float64
	SizeStd       float64
	ClientGini    float64 // inequality of per-client request counts
}

// Summarize computes trace statistics.
func (l *Log) Summarize() Stats {
	s := Stats{Events: len(l.Events)}
	objCount := make(map[int32]int)
	cliCount := make([]float64, l.Clients)
	for _, e := range l.Events {
		if e.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		objCount[e.Object]++
		cliCount[e.Client]++
	}
	if s.Events > 0 {
		s.WriteRatio = float64(s.Writes) / float64(s.Events)
	}
	s.DistinctObjs = len(objCount)
	top := 0
	for _, c := range objCount {
		if c > top {
			top = c
		}
	}
	if s.Events > 0 {
		s.TopObjShare = float64(top) / float64(s.Events)
	}
	sizes := make([]float64, len(l.ObjectSizes))
	for i, v := range l.ObjectSizes {
		sizes[i] = float64(v)
	}
	s.SizeMean = stats.Mean(sizes)
	s.SizeStd = stats.Std(sizes)
	s.ClientGini = stats.GiniCoefficient(cliCount)
	return s
}

// Validate checks internal consistency of the log.
func (l *Log) Validate() error {
	if int32(len(l.ObjectSizes)) != l.Objects {
		return fmt.Errorf("trace: ObjectSizes length %d != Objects %d", len(l.ObjectSizes), l.Objects)
	}
	var prev uint32
	for i, e := range l.Events {
		if e.Object < 0 || e.Object >= l.Objects {
			return fmt.Errorf("trace: event %d references object %d outside [0,%d)", i, e.Object, l.Objects)
		}
		if e.Client < 0 || e.Client >= l.Clients {
			return fmt.Errorf("trace: event %d references client %d outside [0,%d)", i, e.Client, l.Clients)
		}
		if e.Size != l.ObjectSizes[e.Object] {
			return fmt.Errorf("trace: event %d size %d != catalogue size %d", i, e.Size, l.ObjectSizes[e.Object])
		}
		if e.Time < prev {
			return fmt.Errorf("trace: event %d out of time order", i)
		}
		prev = e.Time
	}
	return nil
}

// arrivalClock maps event quantiles to timestamps. With no diurnal
// modulation, events spread uniformly; otherwise the i-th event lands at
// the i/N quantile of the sinusoidal intensity
// λ(t) = 1 + A·sin(2πt/D − π/2), which troughs at the trace start
// (midnight) and peaks mid-trace (noon).
type arrivalClock struct {
	duration uint32
	cdf      []float64 // cumulative intensity over fixed bins; nil = uniform
}

func newArrivalClock(cfg Config) arrivalClock {
	c := arrivalClock{duration: cfg.Duration}
	if cfg.DiurnalAmplitude == 0 {
		return c
	}
	const bins = 1 << 12
	c.cdf = make([]float64, bins)
	acc := 0.0
	for b := 0; b < bins; b++ {
		t := (float64(b) + 0.5) / bins
		acc += 1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*t-math.Pi/2)
		c.cdf[b] = acc
	}
	for b := range c.cdf {
		c.cdf[b] /= acc
	}
	return c
}

// timeOf returns the timestamp of event i of n. Timestamps are
// non-decreasing in i by construction.
func (c arrivalClock) timeOf(i, n int) uint32 {
	q := (float64(i) + 0.5) / float64(n)
	if c.cdf == nil {
		return uint32(q * float64(c.duration))
	}
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(float64(lo) / float64(len(c.cdf)) * float64(c.duration))
}
