package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func smallConfig(seed int64) Config {
	return Config{
		Objects:    200,
		Clients:    50,
		Events:     5000,
		WriteRatio: 0.1,
		Seed:       seed,
	}
}

func TestGenerateBasics(t *testing.T) {
	l, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(l.Events) != 5000 {
		t.Fatalf("got %d events, want 5000", len(l.Events))
	}
	if l.Objects != 200 || l.Clients != 50 {
		t.Fatalf("catalogue sizes wrong: %d/%d", l.Objects, l.Clients)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(smallConfig(1))
	b, _ := Generate(smallConfig(2))
	same := 0
	for i := range a.Events {
		if a.Events[i] == b.Events[i] {
			same++
		}
	}
	if same == len(a.Events) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateWriteRatio(t *testing.T) {
	cfg := smallConfig(3)
	cfg.Events = 50000
	cfg.WriteRatio = 0.2
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := l.Summarize()
	if math.Abs(s.WriteRatio-0.2) > 0.02 {
		t.Fatalf("write ratio %v too far from 0.2", s.WriteRatio)
	}
}

func TestGenerateSkew(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Events = 50000
	cfg.ZipfS = 1.2
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := l.Summarize()
	if s.TopObjShare < 0.05 {
		t.Fatalf("hottest object share %v — trace not Zipf-skewed", s.TopObjShare)
	}
	if s.ClientGini < 0.2 {
		t.Fatalf("client Gini %v — per-client volume not heavy-tailed", s.ClientGini)
	}
}

func TestGenerateSizeModel(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Objects = 5000
	cfg.MeanSize = 20
	cfg.SizeStd = 30
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := l.Summarize()
	if math.Abs(s.SizeMean-20) > 4 {
		t.Fatalf("size mean %v too far from 20", s.SizeMean)
	}
	if s.SizeStd < 10 {
		t.Fatalf("size std %v — sizes should be spread", s.SizeStd)
	}
	for _, sz := range l.ObjectSizes {
		if sz < 1 {
			t.Fatalf("object size %d below 1", sz)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := []Config{
		{Objects: 0, Clients: 1, Events: 1},
		{Objects: 1, Clients: 0, Events: 1},
		{Objects: 1, Clients: 1, Events: 0},
		{Objects: 1, Clients: 1, Events: 1, WriteRatio: 1.0},
		{Objects: 1, Clients: 1, Events: 1, WriteRatio: -0.1},
		{Objects: 1, Clients: 1, Events: 1, ZipfS: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestFridays(t *testing.T) {
	logs, err := Fridays(smallConfig(9), 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 13 {
		t.Fatalf("got %d logs, want 13", len(logs))
	}
	// Instances must differ from each other but share the catalogue shape.
	if logs[0].Objects != logs[1].Objects {
		t.Fatal("Friday catalogues differ in size")
	}
	identical := true
	for i := range logs[0].Events {
		if logs[0].Events[i] != logs[1].Events[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("two Fridays are identical")
	}
	if _, err := Fridays(smallConfig(9), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	l, err := Generate(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertLogsEqual(t, l, got)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{9, 9})
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	l, err := Generate(smallConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestCLFRoundTrip(t *testing.T) {
	cfg := smallConfig(13)
	cfg.Events = 500
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteCLF(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCLF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertLogsEqual(t, l, got)
}

func TestCLFParseErrors(t *testing.T) {
	cases := []string{
		"clientX - - [5] \"GET /object/1 HTTP/1.0\" 200 10",
		"client1 - - [bad] \"GET /object/1 HTTP/1.0\" 200 10",
		"client1 - - [5] \"DELETE /object/1 HTTP/1.0\" 200 10",
		"client1 - - [5] \"GET /objekt/1 HTTP/1.0\" 200 10",
		"client1 - - [5] \"GET /object/1 HTTP/1.0\" 200 big",
		"too few fields",
	}
	for _, line := range cases {
		in := "# objects=2 clients=2\n# size 0 10\n# size 1 10\n" + line + "\n"
		if _, err := ReadCLF(strings.NewReader(in)); err == nil {
			t.Errorf("bad line accepted: %q", line)
		}
	}
}

func TestCLFHeaderMismatch(t *testing.T) {
	in := "# objects=3 clients=2\n# size 0 10\n"
	if _, err := ReadCLF(strings.NewReader(in)); err == nil {
		t.Fatal("size/header mismatch accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	l, err := Generate(smallConfig(14))
	if err != nil {
		t.Fatal(err)
	}
	l.Events[0].Object = l.Objects + 5
	if err := l.Validate(); err == nil {
		t.Fatal("out-of-range object not caught")
	}
	l, _ = Generate(smallConfig(14))
	l.Events[0].Size = l.Events[0].Size + 1
	if err := l.Validate(); err == nil {
		t.Fatal("size mismatch not caught")
	}
	l, _ = Generate(smallConfig(14))
	if len(l.Events) > 1 {
		l.Events[len(l.Events)-1].Time = 0
		l.Events[0].Time = 100
		if err := l.Validate(); err == nil {
			t.Fatal("time disorder not caught")
		}
	}
}

// Property: binary round trip is identity for arbitrary small configs.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, rawObj, rawCli, rawEvt uint8) bool {
		cfg := Config{
			Objects: int(rawObj%50) + 1,
			Clients: int(rawCli%20) + 1,
			Events:  int(rawEvt%100) + 1,
			Seed:    seed,
		}
		l, err := Generate(cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := l.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Objects != l.Objects || got.Clients != l.Clients || len(got.Events) != len(l.Events) {
			return false
		}
		for i := range l.Events {
			if l.Events[i] != got.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func assertLogsEqual(t *testing.T, want, got *Log) {
	t.Helper()
	if got.Objects != want.Objects || got.Clients != want.Clients {
		t.Fatalf("catalogue mismatch: %d/%d vs %d/%d", got.Objects, got.Clients, want.Objects, want.Clients)
	}
	if len(got.ObjectSizes) != len(want.ObjectSizes) {
		t.Fatalf("sizes length mismatch")
	}
	for i := range want.ObjectSizes {
		if got.ObjectSizes[i] != want.ObjectSizes[i] {
			t.Fatalf("size %d mismatch", i)
		}
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("event count mismatch: %d vs %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got.Events[i], want.Events[i])
		}
	}
}

func TestDiurnalPattern(t *testing.T) {
	cfg := smallConfig(30)
	cfg.Events = 100000
	cfg.DiurnalAmplitude = 0.8
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bucket events into 24 "hours"; the noon bucket must carry far more
	// traffic than the midnight bucket, near the (1+A)/(1-A) intensity ratio.
	var buckets [24]int
	for _, e := range l.Events {
		h := int(uint64(e.Time) * 24 / 86400)
		if h > 23 {
			h = 23
		}
		buckets[h]++
	}
	peak := buckets[12] + buckets[11]
	trough := buckets[0] + buckets[23]
	if trough == 0 || float64(peak)/float64(trough) < 3 {
		t.Fatalf("diurnal cycle too weak: peak %d vs trough %d", peak, trough)
	}
}

func TestDiurnalZeroIsUniform(t *testing.T) {
	cfg := smallConfig(31)
	cfg.Events = 48000
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buckets [24]int
	for _, e := range l.Events {
		h := int(uint64(e.Time) * 24 / 86400)
		if h > 23 {
			h = 23
		}
		buckets[h]++
	}
	for h, c := range buckets {
		if c < 1500 || c > 2500 {
			t.Fatalf("uniform trace skewed at hour %d: %d events", h, c)
		}
	}
}

func TestDiurnalValidation(t *testing.T) {
	cfg := smallConfig(32)
	cfg.DiurnalAmplitude = 1.0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("amplitude 1.0 accepted")
	}
	cfg.DiurnalAmplitude = -0.1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("negative amplitude accepted")
	}
}

func TestBinaryHostileHeader(t *testing.T) {
	// A header declaring 2^24+ objects must be rejected before allocation.
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{1, 0})                   // version 1
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f}) // objects = MaxInt32
	buf.Write([]byte{1, 0, 0, 0})             // clients
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // events
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("hostile object count accepted")
	}
}
