package trace

import (
	"fmt"
	"sort"
)

// The paper's log-processing pipeline ("we wrote a script that returned:
// only those objects which were present in all the logs, ... From this log
// we chose the top five hundred clients"): these filters reproduce it over
// the synthetic traces.

// TopClients returns the ids of the n clients with the most requests,
// busiest first (ties break toward the lower id).
func (l *Log) TopClients(n int) []int32 {
	counts := make([]int64, l.Clients)
	for _, e := range l.Events {
		counts[e.Client]++
	}
	ids := make([]int32, l.Clients)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if counts[ids[a]] != counts[ids[b]] {
			return counts[ids[a]] > counts[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}

// FilterClients keeps only the events of the given clients, renumbering
// them densely in the order supplied. The catalogue is unchanged.
func (l *Log) FilterClients(keep []int32) (*Log, error) {
	renumber := make(map[int32]int32, len(keep))
	for newID, old := range keep {
		if old < 0 || old >= l.Clients {
			return nil, fmt.Errorf("trace: client %d out of range [0,%d)", old, l.Clients)
		}
		if _, dup := renumber[old]; dup {
			return nil, fmt.Errorf("trace: client %d listed twice", old)
		}
		renumber[old] = int32(newID)
	}
	out := &Log{
		Objects:     l.Objects,
		Clients:     int32(len(keep)),
		ObjectSizes: append([]int32(nil), l.ObjectSizes...),
	}
	for _, e := range l.Events {
		if newID, ok := renumber[e.Client]; ok {
			e.Client = newID
			out.Events = append(out.Events, e)
		}
	}
	return out, nil
}

// CommonObjects returns the object ids present (requested at least once)
// in every one of the given logs, ascending. All logs must share a
// catalogue size.
func CommonObjects(logs []*Log) ([]int32, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("trace: CommonObjects needs at least one log")
	}
	n := logs[0].Objects
	for i, l := range logs {
		if l.Objects != n {
			return nil, fmt.Errorf("trace: log %d has %d objects, log 0 has %d", i, l.Objects, n)
		}
	}
	count := make([]int, n)
	for _, l := range logs {
		seen := make([]bool, n)
		for _, e := range l.Events {
			seen[e.Object] = true
		}
		for k, s := range seen {
			if s {
				count[k]++
			}
		}
	}
	var out []int32
	for k, c := range count {
		if c == len(logs) {
			out = append(out, int32(k))
		}
	}
	return out, nil
}

// FilterObjects keeps only the events touching the given objects,
// renumbering objects densely in the order supplied and shrinking the
// catalogue accordingly.
func (l *Log) FilterObjects(keep []int32) (*Log, error) {
	renumber := make(map[int32]int32, len(keep))
	sizes := make([]int32, 0, len(keep))
	for newID, old := range keep {
		if old < 0 || old >= l.Objects {
			return nil, fmt.Errorf("trace: object %d out of range [0,%d)", old, l.Objects)
		}
		if _, dup := renumber[old]; dup {
			return nil, fmt.Errorf("trace: object %d listed twice", old)
		}
		renumber[old] = int32(newID)
		sizes = append(sizes, l.ObjectSizes[old])
	}
	out := &Log{
		Objects:     int32(len(keep)),
		Clients:     l.Clients,
		ObjectSizes: sizes,
	}
	for _, e := range l.Events {
		if newID, ok := renumber[e.Object]; ok {
			e.Object = newID
			out.Events = append(out.Events, e)
		}
	}
	return out, nil
}

// PaperPipeline applies the paper's whole preprocessing chain to a set of
// Friday logs: restrict every log to the objects present in all of them,
// then to the top n clients of each log. It returns one processed log per
// input.
func PaperPipeline(logs []*Log, topClients int) ([]*Log, error) {
	common, err := CommonObjects(logs)
	if err != nil {
		return nil, err
	}
	if len(common) == 0 {
		return nil, fmt.Errorf("trace: no objects common to all %d logs", len(logs))
	}
	out := make([]*Log, len(logs))
	for i, l := range logs {
		restricted, err := l.FilterObjects(common)
		if err != nil {
			return nil, err
		}
		top := restricted.TopClients(topClients)
		out[i], err = restricted.FilterClients(top)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
