package trace

import (
	"bytes"
	"testing"
)

// The codecs must never panic on arbitrary input — they return errors.
// Run with `go test -fuzz=FuzzReadBinary ./internal/trace` to explore; the
// seed corpus below runs on every plain `go test`.

func FuzzReadBinary(f *testing.F) {
	// Valid trace as a seed.
	l, err := Generate(Config{Objects: 5, Clients: 3, Events: 20, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("WCTR"))
	f.Add([]byte("WCTR\x01\x00\xff\xff\xff\xff"))
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the codec accepts must be internally consistent enough
		// to re-serialize.
		var out bytes.Buffer
		if err := log.WriteBinary(&out); err != nil {
			t.Fatalf("accepted log failed to re-serialize: %v", err)
		}
	})
}

func FuzzReadCLF(f *testing.F) {
	l, err := Generate(Config{Objects: 4, Clients: 2, Events: 10, Seed: 2})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteCLF(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("# objects=1 clients=1\n# size 0 5\n")
	f.Add("garbage line\n")
	f.Add("# objects=2 clients=1\n# size 0 5\nclient0 - - [1] \"GET /object/0 HTTP/1.0\" 200 5\n")

	f.Fuzz(func(t *testing.T, data string) {
		log, err := ReadCLF(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := log.WriteCLF(&out); err != nil {
			t.Fatalf("accepted log failed to re-serialize: %v", err)
		}
	})
}
