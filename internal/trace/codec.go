package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary format:
//
//	magic    [4]byte  "WCTR"
//	version  uint16   1
//	objects  int32
//	clients  int32
//	events   int64
//	sizes    [objects]int32
//	events   [events]{time uint32, client int32, object int32, flags uint8}
//
// Event sizes are not stored (they are derivable from the catalogue).
// All integers are little-endian.

var binaryMagic = [4]byte{'W', 'C', 'T', 'R'}

const binaryVersion uint16 = 1

// WriteBinary serializes the log in the compact binary format.
func (l *Log) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := []interface{}{binaryVersion, l.Objects, l.Clients, int64(len(l.Events))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, l.ObjectSizes); err != nil {
		return err
	}
	var buf [13]byte
	for _, e := range l.Events {
		binary.LittleEndian.PutUint32(buf[0:], e.Time)
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.Client))
		binary.LittleEndian.PutUint32(buf[8:], uint32(e.Object))
		if e.Write {
			buf[12] = 1
		} else {
			buf[12] = 0
		}
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a log previously written by WriteBinary.
func ReadBinary(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	l := &Log{}
	var nEvents int64
	if err := binary.Read(br, binary.LittleEndian, &l.Objects); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &l.Clients); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nEvents); err != nil {
		return nil, err
	}
	if l.Objects < 0 || l.Clients < 0 || nEvents < 0 {
		return nil, fmt.Errorf("trace: negative counts in header: %d/%d/%d", l.Objects, l.Clients, nEvents)
	}
	if l.Objects > maxHeaderObjects || nEvents > maxHeaderEvents {
		return nil, fmt.Errorf("trace: header counts %d objects / %d events exceed limits %d / %d",
			l.Objects, nEvents, maxHeaderObjects, maxHeaderEvents)
	}
	l.ObjectSizes = make([]int32, l.Objects)
	if err := binary.Read(br, binary.LittleEndian, &l.ObjectSizes); err != nil {
		return nil, err
	}
	// Grow the event slice as bytes actually arrive, so a hostile header
	// cannot force a giant allocation up front.
	prealloc := nEvents
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	l.Events = make([]Event, 0, prealloc)
	var buf [13]byte
	for i := int64(0); i < nEvents; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		obj := int32(binary.LittleEndian.Uint32(buf[8:]))
		if obj < 0 || obj >= l.Objects {
			return nil, fmt.Errorf("trace: event %d object %d out of range", i, obj)
		}
		l.Events = append(l.Events, Event{
			Time:   binary.LittleEndian.Uint32(buf[0:]),
			Client: int32(binary.LittleEndian.Uint32(buf[4:])),
			Object: obj,
			Size:   l.ObjectSizes[obj],
			Write:  buf[12] != 0,
		})
	}
	return l, nil
}

// Header limits keep a hostile stream from forcing huge allocations. The
// paper's scale (25k objects, 2M events) sits far below both.
const (
	maxHeaderObjects = 1 << 24
	maxHeaderEvents  = 1 << 31
)

// WriteCLF renders the trace in an Apache common-log-like text form, one
// line per event:
//
//	client<id> - - [<time>] "GET|POST /object/<id> HTTP/1.0" 200 <size>
//
// This mirrors the shape of the World Cup 1998 logs and exists so the
// parsing path (the paper's "we wrote a script that processed the logs")
// is exercised end to end.
func (l *Log) WriteCLF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# objects=%d clients=%d\n", l.Objects, l.Clients); err != nil {
		return err
	}
	for k, s := range l.ObjectSizes {
		if _, err := fmt.Fprintf(bw, "# size %d %d\n", k, s); err != nil {
			return err
		}
	}
	for _, e := range l.Events {
		method := "GET"
		if e.Write {
			method = "POST"
		}
		if _, err := fmt.Fprintf(bw, "client%d - - [%d] \"%s /object/%d HTTP/1.0\" 200 %d\n",
			e.Client, e.Time, method, e.Object, e.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCLF parses the text form produced by WriteCLF.
func ReadCLF(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	l := &Log{}
	var sizes []int32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			switch {
			case len(fields) >= 4 && fields[1] == "size":
				id, err1 := strconv.Atoi(fields[2])
				sz, err2 := strconv.Atoi(fields[3])
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("trace: bad size line %d: %q", lineNo, line)
				}
				for len(sizes) <= id {
					sizes = append(sizes, 0)
				}
				sizes[id] = int32(sz)
			case len(fields) >= 3 && strings.HasPrefix(fields[1], "objects="):
				n, err := strconv.Atoi(strings.TrimPrefix(fields[1], "objects="))
				if err != nil {
					return nil, fmt.Errorf("trace: bad header line %d: %q", lineNo, line)
				}
				l.Objects = int32(n)
				c, err := strconv.Atoi(strings.TrimPrefix(fields[2], "clients="))
				if err != nil {
					return nil, fmt.Errorf("trace: bad header line %d: %q", lineNo, line)
				}
				l.Clients = int32(c)
			}
			continue
		}
		e, err := parseCLFLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		l.Events = append(l.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	l.ObjectSizes = sizes
	if int32(len(sizes)) != l.Objects {
		return nil, fmt.Errorf("trace: header declared %d objects but %d sizes parsed", l.Objects, len(sizes))
	}
	return l, nil
}

func parseCLFLine(line string) (Event, error) {
	var e Event
	fields := strings.Fields(line)
	if len(fields) != 9 {
		return e, fmt.Errorf("expected 9 fields, got %d in %q", len(fields), line)
	}
	cli, err := strconv.Atoi(strings.TrimPrefix(fields[0], "client"))
	if err != nil {
		return e, fmt.Errorf("bad client field %q", fields[0])
	}
	ts, err := strconv.Atoi(strings.Trim(fields[3], "[]"))
	if err != nil {
		return e, fmt.Errorf("bad timestamp field %q", fields[3])
	}
	method := strings.TrimPrefix(fields[4], "\"")
	switch method {
	case "GET":
		e.Write = false
	case "POST":
		e.Write = true
	default:
		return e, fmt.Errorf("unknown method %q", method)
	}
	obj, err := strconv.Atoi(strings.TrimPrefix(fields[5], "/object/"))
	if err != nil {
		return e, fmt.Errorf("bad object field %q", fields[5])
	}
	sz, err := strconv.Atoi(fields[8])
	if err != nil {
		return e, fmt.Errorf("bad size field %q", fields[8])
	}
	e.Client = int32(cli)
	e.Time = uint32(ts)
	e.Object = int32(obj)
	e.Size = int32(sz)
	return e, nil
}
