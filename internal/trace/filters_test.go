package trace

import (
	"testing"
)

func TestTopClients(t *testing.T) {
	l := &Log{Objects: 1, Clients: 4, ObjectSizes: []int32{1}}
	// client 2: 3 events, client 0: 2, client 3: 1, client 1: 0.
	for _, c := range []int32{2, 0, 2, 3, 2, 0} {
		l.Events = append(l.Events, Event{Client: c, Object: 0, Size: 1})
	}
	top := l.TopClients(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 0 {
		t.Fatalf("TopClients = %v", top)
	}
	all := l.TopClients(99)
	if len(all) != 4 {
		t.Fatalf("clamped TopClients = %v", all)
	}
	// Tie between 1-event and 0-event clients resolved by id.
	if all[2] != 3 || all[3] != 1 {
		t.Fatalf("tie break wrong: %v", all)
	}
}

func TestFilterClients(t *testing.T) {
	l := &Log{Objects: 1, Clients: 3, ObjectSizes: []int32{5}}
	l.Events = []Event{
		{Client: 0, Object: 0, Size: 5},
		{Client: 1, Object: 0, Size: 5},
		{Client: 2, Object: 0, Size: 5},
		{Client: 1, Object: 0, Size: 5},
	}
	out, err := l.FilterClients([]int32{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Clients != 2 || len(out.Events) != 3 {
		t.Fatalf("filtered: clients=%d events=%d", out.Clients, len(out.Events))
	}
	// Client 2 renumbered to 0, client 1 to 1.
	if out.Events[0].Client != 1 || out.Events[1].Client != 0 {
		t.Fatalf("renumbering wrong: %+v", out.Events)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.FilterClients([]int32{7}); err == nil {
		t.Fatal("out-of-range client accepted")
	}
	if _, err := l.FilterClients([]int32{1, 1}); err == nil {
		t.Fatal("duplicate client accepted")
	}
}

func TestCommonObjects(t *testing.T) {
	a := &Log{Objects: 4, Clients: 1, ObjectSizes: []int32{1, 1, 1, 1}}
	a.Events = []Event{{Object: 0, Size: 1}, {Object: 1, Size: 1}, {Object: 3, Size: 1}}
	b := &Log{Objects: 4, Clients: 1, ObjectSizes: []int32{1, 1, 1, 1}}
	b.Events = []Event{{Object: 1, Size: 1}, {Object: 2, Size: 1}, {Object: 3, Size: 1}}
	common, err := CommonObjects([]*Log{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(common) != 2 || common[0] != 1 || common[1] != 3 {
		t.Fatalf("common = %v", common)
	}
	if _, err := CommonObjects(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	c := &Log{Objects: 5, Clients: 1, ObjectSizes: []int32{1, 1, 1, 1, 1}}
	if _, err := CommonObjects([]*Log{a, c}); err == nil {
		t.Fatal("mismatched catalogues accepted")
	}
}

func TestFilterObjects(t *testing.T) {
	l := &Log{Objects: 3, Clients: 1, ObjectSizes: []int32{10, 20, 30}}
	l.Events = []Event{
		{Object: 0, Size: 10},
		{Object: 2, Size: 30},
		{Object: 1, Size: 20},
		{Object: 2, Size: 30},
	}
	out, err := l.FilterObjects([]int32{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Objects != 2 || len(out.Events) != 3 {
		t.Fatalf("filtered: objects=%d events=%d", out.Objects, len(out.Events))
	}
	if out.ObjectSizes[0] != 30 || out.ObjectSizes[1] != 10 {
		t.Fatalf("sizes not remapped: %v", out.ObjectSizes)
	}
	// Object 2 -> 0, object 0 -> 1; sizes follow.
	if out.Events[0].Object != 1 || out.Events[1].Object != 0 {
		t.Fatalf("renumbering wrong: %+v", out.Events)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.FilterObjects([]int32{5}); err == nil {
		t.Fatal("out-of-range object accepted")
	}
	if _, err := l.FilterObjects([]int32{0, 0}); err == nil {
		t.Fatal("duplicate object accepted")
	}
}

func TestPaperPipeline(t *testing.T) {
	logs, err := Fridays(Config{
		Objects: 300, Clients: 80, Events: 8000, Seed: 5,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	processed, err := PaperPipeline(logs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(processed) != 4 {
		t.Fatalf("got %d processed logs", len(processed))
	}
	for i, p := range processed {
		if p.Clients != 20 {
			t.Fatalf("log %d: %d clients, want 20", i, p.Clients)
		}
		if p.Objects == 0 || p.Objects > 300 {
			t.Fatalf("log %d: %d objects", i, p.Objects)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("log %d: %v", i, err)
		}
		if p.Objects != processed[0].Objects {
			t.Fatal("processed logs disagree on the common catalogue")
		}
	}
	// Every retained object must appear in every processed log's events? No —
	// common objects are common to the *originals*; after client filtering
	// some may vanish. But the catalogue must be the common set.
	common, err := CommonObjects(logs)
	if err != nil {
		t.Fatal(err)
	}
	if int(processed[0].Objects) != len(common) {
		t.Fatalf("catalogue %d != common set %d", processed[0].Objects, len(common))
	}
}

func TestPaperPipelineNoCommon(t *testing.T) {
	a := &Log{Objects: 2, Clients: 1, ObjectSizes: []int32{1, 1},
		Events: []Event{{Object: 0, Size: 1}}}
	b := &Log{Objects: 2, Clients: 1, ObjectSizes: []int32{1, 1},
		Events: []Event{{Object: 1, Size: 1}}}
	if _, err := PaperPipeline([]*Log{a, b}, 1); err == nil {
		t.Fatal("disjoint logs accepted")
	}
}
