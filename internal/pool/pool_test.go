package pool

import (
	"sync/atomic"
	"testing"
)

func TestBatchCoversRangeExactlyOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 1000
	var hits [n]int32
	p.Batch(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestBatchZeroAndNegative(t *testing.T) {
	p := New(2)
	defer p.Close()
	called := false
	p.Batch(0, func(lo, hi int) { called = true })
	p.Batch(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("empty batch invoked the worker function")
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	p := New(1)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	ranges := 0
	p.Batch(10, func(lo, hi int) {
		ranges++
		if lo != 0 || hi != 10 {
			t.Fatalf("single worker got range [%d,%d)", lo, hi)
		}
	})
	if ranges != 1 {
		t.Fatalf("single worker split the batch into %d ranges", ranges)
	}
}

func TestWorkerCountClamped(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want clamped to 1", p.Workers())
	}
}

func TestRepeatedBatches(t *testing.T) {
	p := New(3)
	defer p.Close()
	var total int64
	for round := 0; round < 50; round++ {
		p.Batch(100, func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
	}
	if total != 50*100 {
		t.Fatalf("total work %d, want %d", total, 50*100)
	}
}

func TestBatchSmallerThanWorkers(t *testing.T) {
	p := New(8)
	defer p.Close()
	var hits [3]int32
	p.Batch(3, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestBatchGuidedCoversRangeExactlyOnce(t *testing.T) {
	for _, chunk := range []int{0, 1, 7, 64, 5000} {
		p := New(4)
		const n = 1000
		var hits [n]int32
		p.BatchGuided(n, chunk, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("chunk %d: bad range [%d,%d)", chunk, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("chunk %d: index %d hit %d times", chunk, i, h)
			}
		}
		p.Close()
	}
}

func TestBatchGuidedSkewSelfBalances(t *testing.T) {
	// One pathological index does 10000x the work of the others. Guided
	// scheduling with single-index chunks must still cover everything
	// exactly once and let the light indices proceed around the heavy one.
	p := New(4)
	defer p.Close()
	const n = 256
	var total int64
	p.BatchGuided(n, 1, func(lo, hi int) {
		work := int64(1)
		if lo == 0 {
			work = 10000
		}
		for j := int64(0); j < work; j++ {
			atomic.AddInt64(&total, 1)
		}
	})
	if total != 10000+n-1 {
		t.Fatalf("total work %d, want %d", total, 10000+n-1)
	}
}

func TestBatchGuidedInlineWhenSmall(t *testing.T) {
	p := New(1)
	defer p.Close()
	calls := 0
	p.BatchGuided(10, 3, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("inline path got range [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("single-worker guided batch made %d calls, want 1 inline", calls)
	}
}

func TestBatchGuidedZeroAndNegative(t *testing.T) {
	p := New(2)
	defer p.Close()
	called := false
	p.BatchGuided(0, 4, func(lo, hi int) { called = true })
	p.BatchGuided(-3, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("empty guided batch invoked the worker function")
	}
}

func TestSubmitWait(t *testing.T) {
	p := New(3)
	defer p.Close()
	var total int64
	task := func() { atomic.AddInt64(&total, 1) }
	for round := 1; round <= 10; round++ {
		for i := 0; i < round; i++ {
			p.Submit(task)
		}
		p.Wait()
		if got := atomic.LoadInt64(&total); got != int64(round*(round+1)/2) {
			t.Fatalf("round %d: total %d, want %d", round, got, round*(round+1)/2)
		}
	}
}

func TestSubmitDoesNotAllocate(t *testing.T) {
	// The kernel's hot loop submits pre-built closures every round; the
	// whole point of Submit over Batch is that this costs no allocation.
	p := New(2)
	defer p.Close()
	task := func() {}
	avg := testing.AllocsPerRun(100, func() {
		p.Submit(task)
		p.Submit(task)
		p.Wait()
	})
	if avg != 0 {
		t.Fatalf("Submit/Wait allocated %v per round, want 0", avg)
	}
}
