package pool

import (
	"sync/atomic"
	"testing"
)

func TestBatchCoversRangeExactlyOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 1000
	var hits [n]int32
	p.Batch(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestBatchZeroAndNegative(t *testing.T) {
	p := New(2)
	defer p.Close()
	called := false
	p.Batch(0, func(lo, hi int) { called = true })
	p.Batch(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("empty batch invoked the worker function")
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	p := New(1)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	ranges := 0
	p.Batch(10, func(lo, hi int) {
		ranges++
		if lo != 0 || hi != 10 {
			t.Fatalf("single worker got range [%d,%d)", lo, hi)
		}
	})
	if ranges != 1 {
		t.Fatalf("single worker split the batch into %d ranges", ranges)
	}
}

func TestWorkerCountClamped(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want clamped to 1", p.Workers())
	}
}

func TestRepeatedBatches(t *testing.T) {
	p := New(3)
	defer p.Close()
	var total int64
	for round := 0; round < 50; round++ {
		p.Batch(100, func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
	}
	if total != 50*100 {
		t.Fatalf("total work %d, want %d", total, 50*100)
	}
}

func TestBatchSmallerThanWorkers(t *testing.T) {
	p := New(8)
	defer p.Close()
	var hits [3]int32
	p.Batch(3, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}
