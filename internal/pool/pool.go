// Package pool provides a tiny persistent worker pool for the solvers'
// fan-out loops. Workers live for the lifetime of the pool, so algorithms
// with many small parallel phases (one per mechanism round or greedy
// iteration) do not pay a goroutine spawn per phase.
package pool

import "sync"

// Pool is a fixed-size persistent worker pool.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
}

// New starts a pool with n workers (at least 1).
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{workers: n, tasks: make(chan func(), n)}
	for i := 0; i < n; i++ {
		go func() {
			for f := range p.tasks {
				f()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the workers down. The pool must be idle.
func (p *Pool) Close() { close(p.tasks) }

// Batch splits [0, n) into one chunk per worker, runs the chunks on the
// pool, and blocks until all complete. f must be safe for concurrent calls
// on disjoint ranges.
func (p *Pool) Batch(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		f(0, n)
		return
	}
	chunk := (n + p.workers - 1) / p.workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		p.wg.Add(1)
		p.tasks <- func() { f(lo, hi) }
	}
	p.wg.Wait()
}
