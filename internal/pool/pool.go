// Package pool provides a tiny persistent worker pool for the solvers'
// fan-out loops. Workers live for the lifetime of the pool, so algorithms
// with many small parallel phases (one per mechanism round or greedy
// iteration) do not pay a goroutine spawn per phase.
package pool

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size persistent worker pool.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
	cursor  atomic.Int64 // work-stealing cursor for BatchGuided
}

// New starts a pool with n workers (at least 1).
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{workers: n, tasks: make(chan func(), n)}
	for i := 0; i < n; i++ {
		go func() {
			for f := range p.tasks {
				f()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the workers down. The pool must be idle.
func (p *Pool) Close() { close(p.tasks) }

// Submit schedules f on the pool. Pair with Wait. Unlike Batch, Submit does
// not wrap f, so a caller that pre-builds its task closures once can run
// them every round without a single steady-state allocation.
func (p *Pool) Submit(f func()) {
	p.wg.Add(1)
	p.tasks <- f
}

// Wait blocks until every task submitted since the last Wait has completed.
func (p *Pool) Wait() { p.wg.Wait() }

// Batch splits [0, n) into one contiguous chunk per worker, runs the chunks
// on the pool, and blocks until all complete. f must be safe for concurrent
// calls on disjoint ranges.
//
// Static even chunking is ideal when per-index work is uniform; when it is
// skewed (per-agent candidate counts vary wildly), a worker can be stranded
// on the one heavy chunk while the rest idle — use BatchGuided there.
func (p *Pool) Batch(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		f(0, n)
		return
	}
	chunk := (n + p.workers - 1) / p.workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		p.wg.Add(1)
		p.tasks <- func() { f(lo, hi) }
	}
	p.wg.Wait()
}

// BatchGuided runs f over [0, n) in chunks of the given size handed out by
// an atomic counter: workers that finish early immediately grab the next
// chunk instead of idling, so skewed per-index work self-balances. Every
// index is covered exactly once; which worker runs which chunk is
// scheduling-dependent, so f must not care (disjoint writes, commutative
// accumulation). chunk <= 0 selects a size that gives each worker ~4 chunks.
func (p *Pool) BatchGuided(n, chunk int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = (n + 4*p.workers - 1) / (4 * p.workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	if p.workers == 1 || n <= chunk {
		f(0, n)
		return
	}
	p.cursor.Store(0)
	c := int64(chunk)
	worker := func() {
		for {
			lo := p.cursor.Add(c) - c
			if lo >= int64(n) {
				return
			}
			hi := lo + c
			if hi > int64(n) {
				hi = int64(n)
			}
			f(int(lo), int(hi))
		}
	}
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		p.tasks <- worker
	}
	p.wg.Wait()
}
