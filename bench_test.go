// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (run them with `go test -bench=Figure -benchtime=1x` etc. for
// a single full regeneration, or via cmd/paperbench for readable output),
// plus per-method solve benchmarks and micro-benchmarks of the substrate
// hot paths.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/adaptive"
	"repro/internal/agtram"
	"repro/internal/bench"
	"repro/internal/exhaustive"
	"repro/internal/hierarchy"
	"repro/internal/replication"
	"repro/internal/stats"
	"repro/internal/testutil"
	"repro/internal/topology"
	"repro/internal/workload"
)

// benchScale keeps a full experiment regeneration inside a benchmark
// iteration affordable; cmd/paperbench defaults to 10x this.
const benchScale = 0.008

func benchConfig() bench.Config {
	return bench.Config{Scale: benchScale, Seed: 42, GRAGenerations: 10}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure3(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure4(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPayment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationPayment(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationValuation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationValuation(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationEngine(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve measures each of the six methods on one mid-size instance
// (the per-cell cost of Tables 1 and 2). The valuations/op metric reports
// the method's dominant operation count (Result.Work) so BENCH_*.json can
// track algorithmic wins independently of wall-clock noise. The instance is
// built once — Solve is documented to start every run from a fresh
// primary-only schema, so iterations are independent.
func BenchmarkSolve(b *testing.B) {
	inst, err := repro.NewInstance(repro.InstanceConfig{
		Servers: 64, Objects: 400, Requests: 24000,
		RWRatio: 0.85, CapacityPercent: 25, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range repro.Methods() {
		b.Run(string(m), func(b *testing.B) {
			var work int64
			for i := 0; i < b.N; i++ {
				res, err := inst.Solve(m, &repro.Options{Seed: 42, GRAGenerations: 10})
				if err != nil {
					b.Fatal(err)
				}
				work += res.Work
			}
			b.ReportMetric(float64(work)/float64(b.N), "valuations/op")
		})
	}
}

// agtramEngines are the per-engine option sets shared by the engine
// benchmarks; "incremental" is the default engine, "sync" the opt-out.
var agtramEngines = []struct {
	name string
	opts repro.Options
}{
	{"incremental", repro.Options{}},
	{"sync", repro.Options{Sync: true}},
	{"distributed", repro.Options{Distributed: true}},
	{"network", repro.Options{Network: true}},
}

func benchSolveAGTRAM(b *testing.B, inst *repro.Instance, opts repro.Options) {
	b.Helper()
	b.ReportAllocs()
	var work int64
	for i := 0; i < b.N; i++ {
		res, err := inst.Solve(repro.AGTRAM, &opts)
		if err != nil {
			b.Fatal(err)
		}
		work += res.Work
	}
	b.ReportMetric(float64(work)/float64(b.N), "valuations/op")
}

func benchEngines(b *testing.B, cfg repro.InstanceConfig) {
	inst, err := repro.NewInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range agtramEngines {
		b.Run(e.name, func(b *testing.B) {
			benchSolveAGTRAM(b, inst, e.opts)
		})
	}
}

// benchEnginesScaled is the large-scale engine comparison shared by the
// M=500 and M=1000 benchmarks: the in-process engines plus the incremental
// engine at fixed worker counts (w1/w2/w4/w8), the numbers behind the
// EXPERIMENTS.md speedup table and BENCH_*.json. The network engine is
// skipped: serializing thousands of agents over net.Pipe measures gob, not
// the mechanism. The instance is built once (Solve is reuse-safe), so the
// expensive all-pairs shortest paths run stays out of every iteration.
func benchEnginesScaled(b *testing.B, cfg repro.InstanceConfig) {
	inst, err := repro.NewInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range agtramEngines {
		if e.name == "network" {
			continue
		}
		b.Run(e.name, func(b *testing.B) {
			benchSolveAGTRAM(b, inst, e.opts)
		})
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("incremental-w%d", w), func(b *testing.B) {
			benchSolveAGTRAM(b, inst, repro.Options{Workers: w})
		})
	}
}

// BenchmarkAGTRAMEngines compares the four mechanism engines (Ablation C's
// cost side) on one Table 1/Table 2-scale instance.
func BenchmarkAGTRAMEngines(b *testing.B) {
	benchEngines(b, repro.InstanceConfig{
		Servers: 48, Objects: 300, Requests: 18000,
		RWRatio: 0.9, CapacityPercent: 20, Seed: 42,
	})
}

// BenchmarkAGTRAMEnginesLarge scales the engine comparison to M >= 500
// servers, the regime where the incremental engine's dirty-set re-pricing
// pulls decisively ahead of the per-round full rescan.
func BenchmarkAGTRAMEnginesLarge(b *testing.B) {
	benchEnginesScaled(b, repro.InstanceConfig{
		Servers: 500, Objects: 1500, Requests: 90000,
		RWRatio: 0.9, CapacityPercent: 20, Seed: 42,
	})
}

// BenchmarkAGTRAMEnginesXLarge doubles the server count again (M=1000), the
// scale where the flat-arena kernel's cache behavior dominates.
func BenchmarkAGTRAMEnginesXLarge(b *testing.B) {
	benchEnginesScaled(b, repro.InstanceConfig{
		Servers: 1000, Objects: 3000, Requests: 180000,
		RWRatio: 0.9, CapacityPercent: 20, Seed: 42,
	})
}

// --- substrate micro-benchmarks ---

func BenchmarkAllPairsShortestPaths(b *testing.B) {
	r := stats.NewRNG(1)
	g, err := topology.Random(300, 0.1, topology.DefaultWeights, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topology.AllPairs(g, 0)
	}
}

func benchProblem(b *testing.B) *replication.Problem {
	b.Helper()
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: 64, Objects: 400, Requests: 24000, RWRatio: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(2)
	g, err := topology.Random(64, 0.3, topology.DefaultWeights, r)
	if err != nil {
		b.Fatal(err)
	}
	caps, err := replication.GenerateCapacities(w, 30, r)
	if err != nil {
		b.Fatal(err)
	}
	p, err := replication.NewProblem(topology.AllPairs(g, 0), w, caps)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkPlaceReplica(b *testing.B) {
	p := benchProblem(b)
	r := stats.NewRNG(3)
	b.ResetTimer()
	s := p.NewSchema()
	for i := 0; i < b.N; i++ {
		k := int32(r.Intn(p.N))
		m := r.Intn(p.M)
		if s.CanPlace(k, m) != nil {
			s = p.NewSchema() // start over when the schema saturates
			continue
		}
		if _, err := s.PlaceReplica(k, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalBenefit(b *testing.B) {
	p := benchProblem(b)
	s := p.NewSchema()
	r := stats.NewRNG(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LocalBenefit(r.Intn(p.M), int32(r.Intn(p.N)))
	}
}

func BenchmarkRecomputeCost(b *testing.B) {
	p := benchProblem(b)
	s := p.NewSchema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RecomputeCost()
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.GenerateTrace(repro.TraceConfig{
			Objects: 1000, Clients: 100, Events: 50000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension benchmarks ---

func BenchmarkHierarchy(b *testing.B) {
	for _, mode := range []hierarchy.Mode{hierarchy.Hierarchical, hierarchy.Autonomous} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := testutil.MustBuild(testutil.Small(42))
				b.StartTimer()
				if _, err := hierarchy.Solve(context.Background(), p, hierarchy.Config{Regions: 4, Mode: mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAdaptiveEpoch(b *testing.B) {
	ws, err := adaptive.GenerateEpochs(workload.SyntheticConfig{
		Servers: 32, Objects: 200, Requests: 12000, RWRatio: 0.9, Seed: 1,
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(2)
	g, err := topology.Random(32, 0.3, topology.DefaultWeights, r)
	if err != nil {
		b.Fatal(err)
	}
	caps, err := replication.GenerateCapacities(ws[0], 15, r)
	if err != nil {
		b.Fatal(err)
	}
	cost := topology.AllPairs(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adaptive.Run(context.Background(), cost, ws, caps, adaptive.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	l, err := repro.GenerateTrace(repro.TraceConfig{
		Objects: 400, Clients: 100, Events: 30000, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	inst, err := repro.NewInstanceFromTrace(l, repro.InstanceConfig{
		Servers: 40, CapacityPercent: 20, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Replay(res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveOptimum(b *testing.B) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Servers: 4, Objects: 6, Requests: 800, RWRatio: 0.85,
		DemandFraction: 0.6, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(6)
	g, err := topology.Random(4, 0.5, topology.DefaultWeights, r)
	if err != nil {
		b.Fatal(err)
	}
	caps, err := replication.GenerateCapacities(w, 20, r)
	if err != nil {
		b.Fatal(err)
	}
	p, err := replication.NewProblem(topology.AllPairs(g, 1), w, caps)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exhaustive.Solve(context.Background(), p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveTCPLoopback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := testutil.MustBuild(testutil.Small(7))
		b.StartTimer()
		if _, err := agtram.SolveTCP(context.Background(), p, agtram.Config{}, "127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
	}
}
