package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

func smallConfig(seed int64) repro.InstanceConfig {
	return repro.InstanceConfig{
		Servers:         24,
		Objects:         120,
		Requests:        7200,
		RWRatio:         0.9,
		CapacityPercent: 20,
		Seed:            seed,
	}
}

func TestNewInstanceAndSolveAll(t *testing.T) {
	for _, m := range repro.Methods() {
		inst, err := repro.NewInstance(smallConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := inst.Solve(m, &repro.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Method != m {
			t.Fatalf("result method %q, want %q", res.Method, m)
		}
		if res.SavingsPercent <= 0 {
			t.Fatalf("%s: savings %.2f, want > 0", m, res.SavingsPercent)
		}
		if res.OTC >= res.BaseOTC {
			t.Fatalf("%s: OTC did not improve: %d vs %d", m, res.OTC, res.BaseOTC)
		}
		if res.Replicas <= 0 || res.Work <= 0 {
			t.Fatalf("%s: missing counters: replicas=%d work=%d", m, res.Replicas, res.Work)
		}
	}
}

func TestInstanceAccessors(t *testing.T) {
	inst, err := repro.NewInstance(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Servers() != 24 || inst.Objects() != 120 {
		t.Fatalf("accessors wrong: %d/%d", inst.Servers(), inst.Objects())
	}
	if inst.BaseOTC() <= 0 {
		t.Fatal("base OTC should be positive")
	}
	if inst.Config().Seed != 2 {
		t.Fatal("config not retained")
	}
	if inst.Problem() == nil {
		t.Fatal("problem accessor nil")
	}
}

func TestSolveIsRepeatable(t *testing.T) {
	inst, err := repro.NewInstance(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Solving again must start from the primary-only placement.
	b, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.OTC != b.OTC || a.Replicas != b.Replicas {
		t.Fatalf("instance mutated between solves: %d/%d vs %d/%d",
			a.OTC, a.Replicas, b.OTC, b.Replicas)
	}
}

func TestAGTRAMEnginesAgreeViaFacade(t *testing.T) {
	inst, err := repro.NewInstance(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	sync, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := inst.Solve(repro.AGTRAM, &repro.Options{Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	network, err := inst.Solve(repro.AGTRAM, &repro.Options{Network: true})
	if err != nil {
		t.Fatal(err)
	}
	if sync.OTC != dist.OTC || sync.OTC != network.OTC {
		t.Fatalf("engines disagree: %d / %d / %d", sync.OTC, dist.OTC, network.OTC)
	}
}

func TestTopologyKinds(t *testing.T) {
	kinds := []repro.TopologyKind{
		repro.TopologyRandom, repro.TopologyWaxman, repro.TopologyPowerLaw,
	}
	for _, k := range kinds {
		cfg := smallConfig(5)
		cfg.Topology = k
		inst, err := repro.NewInstance(cfg)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if _, err := inst.Solve(repro.Greedy, nil); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
	}
	// Transit-stub needs an exact shape: 4d(1+2s) servers. d=1, s=2 -> 20.
	cfg := smallConfig(6)
	cfg.Servers = 20
	cfg.Topology = repro.TopologyTransitStub
	if _, err := repro.NewInstance(cfg); err != nil {
		t.Fatalf("transitstub: %v", err)
	}
	cfg.Servers = 21
	if _, err := repro.NewInstance(cfg); err == nil {
		t.Fatal("impossible transit-stub shape accepted")
	}
}

func TestUnknownInputs(t *testing.T) {
	cfg := smallConfig(7)
	cfg.Topology = "möbius"
	if _, err := repro.NewInstance(cfg); err == nil {
		t.Fatal("unknown topology accepted")
	}
	inst, err := repro.NewInstance(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Solve("simulated-annealing", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestTraceDrivenInstance(t *testing.T) {
	tr, err := repro.GenerateTrace(repro.TraceConfig{
		Objects: 150, Clients: 40, Events: 9000, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := repro.NewInstanceFromTrace(tr, repro.InstanceConfig{
		Servers:         20,
		CapacityPercent: 25,
		Seed:            8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Objects() != 150 {
		t.Fatalf("objects = %d, want 150", inst.Objects())
	}
	res, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingsPercent <= 0 {
		t.Fatalf("trace-driven savings %.2f, want > 0", res.SavingsPercent)
	}
}

func TestGenerateFridays(t *testing.T) {
	logs, err := repro.GenerateFridays(repro.TraceConfig{
		Objects: 60, Clients: 10, Events: 500, Seed: 9,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 3 {
		t.Fatalf("got %d logs", len(logs))
	}
}

// Quality shape of the paper: AGT-RAM and Greedy lead, GRA trails.
func TestQualityOrderingShape(t *testing.T) {
	cfg := repro.InstanceConfig{
		Servers: 48, Objects: 300, Requests: 18000,
		RWRatio: 0.9, CapacityPercent: 20, Seed: 10,
	}
	get := func(m repro.Method) float64 {
		inst, err := repro.NewInstance(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := inst.Solve(m, &repro.Options{Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.SavingsPercent
	}
	agt := get(repro.AGTRAM)
	gra := get(repro.GRA)
	if gra >= agt {
		t.Fatalf("GRA (%.2f) should trail AGT-RAM (%.2f)", gra, agt)
	}
}

func TestSolveTCPViaFacade(t *testing.T) {
	inst, err := repro.NewInstance(smallConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	sync, err := inst.Solve(repro.AGTRAM, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := inst.Solve(repro.AGTRAM, &repro.Options{TCPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if sync.OTC != tcp.OTC || sync.Replicas != tcp.Replicas {
		t.Fatalf("TCP engine disagrees: %d/%d vs %d/%d",
			tcp.OTC, tcp.Replicas, sync.OTC, sync.Replicas)
	}
}

func TestResultReportAndBreakdown(t *testing.T) {
	inst, err := repro.NewInstance(smallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Solve(repro.Greedy, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "per_server") {
		t.Fatal("report missing per-server section")
	}
	read, ship, bcast, err := res.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if read+ship+bcast != res.OTC {
		t.Fatalf("breakdown %d+%d+%d != OTC %d", read, ship, bcast, res.OTC)
	}
	var empty repro.Result
	if err := empty.WriteReport(&buf); err == nil {
		t.Fatal("empty result produced a report")
	}
	if _, _, _, err := empty.Breakdown(); err == nil {
		t.Fatal("empty result produced a breakdown")
	}
}
